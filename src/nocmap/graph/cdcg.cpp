#include "nocmap/graph/cdcg.hpp"

#include <algorithm>
#include <queue>
#include <set>
#include <sstream>
#include <stdexcept>

namespace nocmap::graph {

CoreId Cdcg::add_core(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<CoreId>(names_.size() - 1);
}

PacketId Cdcg::add_packet(CoreId src, CoreId dst, std::uint64_t comp_time,
                          std::uint64_t bits) {
  if (src >= names_.size() || dst >= names_.size()) {
    throw std::invalid_argument("Cdcg: unknown core id");
  }
  if (src == dst) {
    throw std::invalid_argument("Cdcg: self-communication is not modelled");
  }
  if (bits == 0) {
    throw std::invalid_argument("Cdcg: packets must carry at least one bit");
  }
  packets_.push_back(Packet{src, dst, comp_time, bits});
  succ_.emplace_back();
  pred_.emplace_back();
  return static_cast<PacketId>(packets_.size() - 1);
}

void Cdcg::check_packet(PacketId id) const {
  if (id >= packets_.size()) {
    throw std::invalid_argument("Cdcg: unknown packet id " + std::to_string(id));
  }
}

void Cdcg::add_dependence(PacketId from, PacketId to) {
  check_packet(from);
  check_packet(to);
  if (from == to) {
    throw std::invalid_argument("Cdcg: a packet cannot depend on itself");
  }
  if (std::find(succ_[from].begin(), succ_[from].end(), to) !=
      succ_[from].end()) {
    throw std::invalid_argument("Cdcg: duplicate dependence edge");
  }
  succ_[from].push_back(to);
  pred_[to].push_back(from);
  ++num_edges_;
}

const std::string& Cdcg::core_name(CoreId core) const {
  if (core >= names_.size()) {
    throw std::invalid_argument("Cdcg: unknown core id " + std::to_string(core));
  }
  return names_[core];
}

const Packet& Cdcg::packet(PacketId id) const {
  check_packet(id);
  return packets_[id];
}

const std::vector<PacketId>& Cdcg::successors(PacketId id) const {
  check_packet(id);
  return succ_[id];
}

const std::vector<PacketId>& Cdcg::predecessors(PacketId id) const {
  check_packet(id);
  return pred_[id];
}

std::vector<PacketId> Cdcg::roots() const {
  std::vector<PacketId> out;
  for (PacketId p = 0; p < packets_.size(); ++p) {
    if (pred_[p].empty()) out.push_back(p);
  }
  return out;
}

std::vector<PacketId> Cdcg::sinks() const {
  std::vector<PacketId> out;
  for (PacketId p = 0; p < packets_.size(); ++p) {
    if (succ_[p].empty()) out.push_back(p);
  }
  return out;
}

std::uint64_t Cdcg::total_bits() const {
  std::uint64_t sum = 0;
  for (const Packet& p : packets_) sum += p.bits;
  return sum;
}

std::vector<PacketId> Cdcg::topological_order() const {
  std::vector<std::size_t> indegree(packets_.size());
  for (PacketId p = 0; p < packets_.size(); ++p) indegree[p] = pred_[p].size();

  // Kahn's algorithm with a min-priority queue so the order is deterministic
  // and independent of edge insertion order.
  std::priority_queue<PacketId, std::vector<PacketId>, std::greater<>> ready;
  for (PacketId p = 0; p < packets_.size(); ++p) {
    if (indegree[p] == 0) ready.push(p);
  }
  std::vector<PacketId> order;
  order.reserve(packets_.size());
  while (!ready.empty()) {
    PacketId p = ready.top();
    ready.pop();
    order.push_back(p);
    for (PacketId s : succ_[p]) {
      if (--indegree[s] == 0) ready.push(s);
    }
  }
  if (order.size() != packets_.size()) {
    throw std::logic_error("Cdcg: dependence cycle detected");
  }
  return order;
}

bool Cdcg::is_acyclic() const {
  try {
    (void)topological_order();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

void Cdcg::validate(bool require_connected) const {
  if (!is_acyclic()) {
    throw std::logic_error("Cdcg: dependence cycle detected");
  }
  if (require_connected) {
    std::set<CoreId> used;
    for (const Packet& p : packets_) {
      used.insert(p.src);
      used.insert(p.dst);
    }
    for (CoreId c = 0; c < names_.size(); ++c) {
      if (!used.count(c)) {
        throw std::logic_error("Cdcg: core '" + names_[c] +
                               "' neither sends nor receives any packet");
      }
    }
  }
}

Cwg Cdcg::to_cwg() const {
  Cwg cwg;
  for (const std::string& name : names_) cwg.add_core(name);
  for (const Packet& p : packets_) cwg.add_traffic(p.src, p.dst, p.bits);
  return cwg;
}

std::string Cdcg::to_dot() const {
  std::ostringstream os;
  os << "digraph CDCG {\n  Start [shape=circle];\n  End [shape=doublecircle];\n";
  for (PacketId p = 0; p < packets_.size(); ++p) {
    const Packet& pk = packets_[p];
    os << "  p" << p << " [shape=box,label=\"" << pk.bits << " "
       << names_[pk.src] << "->" << names_[pk.dst] << "\\nt:" << pk.comp_time
       << "\"];\n";
  }
  for (PacketId p : roots()) os << "  Start -> p" << p << ";\n";
  for (PacketId p = 0; p < packets_.size(); ++p) {
    for (PacketId s : succ_[p]) os << "  p" << p << " -> p" << s << ";\n";
  }
  for (PacketId p : sinks()) os << "  p" << p << " -> End;\n";
  os << "}\n";
  return os.str();
}

}  // namespace nocmap::graph
