#include "nocmap/graph/cwg.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace nocmap::graph {

CoreId Cwg::add_core(std::string name) {
  names_.push_back(std::move(name));
  return static_cast<CoreId>(names_.size() - 1);
}

void Cwg::check_core(CoreId core) const {
  if (core >= names_.size()) {
    throw std::invalid_argument("Cwg: unknown core id " + std::to_string(core));
  }
}

void Cwg::add_traffic(CoreId src, CoreId dst, std::uint64_t bits) {
  check_core(src);
  check_core(dst);
  if (src == dst) {
    throw std::invalid_argument("Cwg: self-communication is not modelled");
  }
  if (bits == 0) {
    throw std::invalid_argument("Cwg: zero-bit traffic is not an edge");
  }
  weights_[{src, dst}] += bits;
}

const std::string& Cwg::name(CoreId core) const {
  check_core(core);
  return names_[core];
}

std::uint64_t Cwg::volume(CoreId src, CoreId dst) const {
  check_core(src);
  check_core(dst);
  auto it = weights_.find({src, dst});
  return it == weights_.end() ? 0 : it->second;
}

std::uint64_t Cwg::total_volume() const {
  std::uint64_t sum = 0;
  for (const auto& [edge, bits] : weights_) sum += bits;
  return sum;
}

std::vector<CwgEdge> Cwg::edges() const {
  std::vector<CwgEdge> out;
  out.reserve(weights_.size());
  for (const auto& [edge, bits] : weights_) {
    out.push_back(CwgEdge{edge.first, edge.second, bits});
  }
  return out;
}

std::vector<CoreId> Cwg::connected_cores() const {
  std::set<CoreId> seen;
  for (const auto& [edge, bits] : weights_) {
    seen.insert(edge.first);
    seen.insert(edge.second);
  }
  return {seen.begin(), seen.end()};
}

std::string Cwg::to_dot() const {
  std::ostringstream os;
  os << "digraph CWG {\n";
  for (CoreId c = 0; c < names_.size(); ++c) {
    os << "  c" << c << " [label=\"" << names_[c] << "\"];\n";
  }
  for (const auto& [edge, bits] : weights_) {
    os << "  c" << edge.first << " -> c" << edge.second << " [label=\"" << bits
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace nocmap::graph
