/// \file nocmap_cli.cpp
/// The `nocmap` command-line driver.
///
/// One binary wrapping the FRW exploration flow (core::Explorer) and the
/// Table-1 workload suite behind five subcommands:
///
///   nocmap explore      optimize one workload under CWM and CDCM and compare
///   nocmap bench        run the Table-1 suite, print Table-2-style ETR/ECS rows
///   nocmap workloads    list the built-in workloads and their statistics
///   nocmap sweep        repeat explore over a seed range and aggregate
///   nocmap serve-bench  load-test the caching/warm-start serving engine
///
/// Every subcommand renders through util::TextTable and switches to CSV with
/// --csv, so results pipe straight into plotting scripts. Exit codes: 0 on
/// success, 1 on a runtime failure, 2 on a usage error.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <new>

#include "nocmap/nocmap.hpp"

// --- Global allocation probe -------------------------------------------------
// Counts every heap allocation in the process so `nocmap bench --perf` can
// report a real cdcm_allocs_per_run ("alloc_probe": "counted") instead of
// declaring the probe unavailable. Mirrors bench/bench_cost_eval.cpp.

namespace {
std::atomic<std::uint64_t> g_cli_allocations{0};
std::uint64_t cli_allocation_count() {
  return g_cli_allocations.load(std::memory_order_relaxed);
}
}  // namespace

void* operator new(std::size_t size) {
  g_cli_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace nocmap;

/// Thrown on bad argv; main() prints the message plus a usage hint, exits 2.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

constexpr const char* kTopUsage =
    R"(nocmap — energy- and timing-aware NoC mapping (Marcon et al., DATE 2005)

Usage: nocmap <subcommand> [options]

Subcommands:
  explore     Optimize one workload under the CWM (Equation 3) and CDCM
              (Equation 10) objectives and compare both mappings with the
              ground-truth wormhole simulator (ETR / ECS).
  bench       Run the paper's 18-application Table-1 suite and print
              Table-2-style ETR/ECS rows.
  workloads   List the built-in workloads (Table-1 statistics).
  sweep       Repeat explore over a range of seeds and aggregate.
  serve-bench Replay a randomized request stream (with controllable
              duplicate / near-duplicate ratios) through the canonical-form
              caching, warm-starting serving engine and write latency /
              throughput / cache statistics to BENCH_serve.json.

Global:
  -h, --help     Show this message (or subcommand help after a subcommand).
  --version      Print the library version.

Run `nocmap <subcommand> --help` for per-subcommand options.
)";

constexpr const char* kExploreUsage =
    R"(Usage: nocmap explore [options]

Optimize one workload under both application models and report the
execution-time reduction (ETR) and energy-consumption saving (ECS) of the
timing-aware CDCM mapping over the volume-only CWM mapping.

Options:
  --workload NAME   Workload to map (default: paper-example). NAME is
                    "paper-example", any `nocmap workloads` suite name
                    (e.g. romberg-v1, random-big-2), "random" to generate
                    a fresh random CDCG (see --cores/--packets/--bits), or
                    a workload source: file:PATH (.json/.csv/.tgff) or
                    gen:SPEC, with a '#NAME' or '#INDEX' fragment to pick
                    one application from a multi-workload source (see
                    `nocmap workloads --help` and docs/workloads.md).
  --mesh WxH        Mesh size, e.g. 4x4 (default: the workload's own size;
                    2x2 for paper-example).
  --tech NAME       Technology preset: example | 0.35u | 0.07u
                    (default: example for paper-example, 0.07u otherwise).
  --method NAME     Search method: auto | sa | es | bnb | portfolio
                    (default: auto — ES when the symmetry-pruned space is
                    small, SA otherwise). bnb is exact branch and bound:
                    admissible lower-bound pruning with a greedy+SA-seeded
                    incumbent; past --bnb-nodes it falls back to the
                    incumbent (reported as BB/SA). portfolio races SA chains
                    across cooling schedules and move sets (pairwise swaps
                    and the large-neighbourhood catalogue) plus a budgeted
                    B&B member, greedy-seeded, deterministic for any
                    --threads. See docs/search.md.
  --search NAME     Alias for --method.
  --time-budget MS  Wall-clock budget per SA chain / portfolio member in
                    milliseconds, honored at temperature-step boundaries
                    (the cut is recorded as a move-count checkpoint, so the
                    result stays reproducible). Default: none.
  --bnb-nodes N     bnb: node budget (lower-bound tests) before falling
                    back to SA quality (default: 20,000,000). Completed
                    searches are byte-identical for any --threads;
                    budget-truncated runs consume the budget in thread
                    order and reproduce exactly only at --threads 1.
  --topology NAME   NoC topology: mesh | torus | xmesh (default: mesh).
                    torus adds wrap-around links on dimensions of size >= 3;
                    xmesh adds express links every --express-interval tiles.
  --express-interval N
                    xmesh express-link spacing, k >= 2 (default: 2).
  --routing NAME    Routing algorithm: xy | yx | west-first | odd-even
                    (default: xy).
  --seed N          RNG seed driving the SA runs (default: 1).
  --threads N       Worker threads for the SA chains and for the batched
                    CDCM exhaustive search (default: 1). Purely a
                    throughput knob: results are identical for any N.
  --chains N        Independent SA chains per model, best-of-N (default: 1).
  --cost NAME       Timing-aware objective: cdcm (default, Equation 10) or
                    hybrid (CWM-delta prefilter proposes, CDCM verifies at
                    --hybrid-cadence and at every temperature step).
  --hybrid-cadence N
                    With --cost hybrid: verify every Nth priced move with
                    an exact CDCM delta (default: 8; 1 = every move,
                    0 = step resyncs only).
  --ckpt-interval N Enable checkpointed incremental CDCM evaluation: move
                    pricing restores the latest event-loop snapshot taken
                    before the earliest instant the move can affect and
                    replays only the suffix, bitwise-identical to a full
                    resimulation. N is the snapshot cadence in event pops
                    (0 = auto, scaled from the packet count). Ignored —
                    with a full-resimulation fallback — for --backend flit.
  --no-seed-cdcm    Do not seed the CDCM search with the CWM winner.
  --cores N         (--workload random) number of cores (default: 8).
  --packets N       (--workload random) number of packets (default: 32).
  --bits N          (--workload random) total bit volume (default: 4096).
  --backend NAME    Evaluation backend: link (whole-link claims, the paper's
                    model, default) or flit (flit-accurate: finite input
                    buffers, flow control, backpressure). See
                    docs/simulation.md.
  --buffer-depth N  (--backend flit) input-buffer flits per router port
                    (default: 8).
  --flow-control NAME
                    (--backend flit) credit | onoff (default: credit).
  --switching NAME  (--backend flit) wormhole | vct (default: wormhole;
                    vct needs --buffer-depth >= the largest packet).
  --seed-mapping FILE
                    Warm-start the search from the mapping in FILE:
                    whitespace- or comma-separated tile ids (# starts a
                    line comment), one per core
                    (core i starts on the i-th tile listed). The ids must
                    be distinct, in range, and exactly one per application
                    core — anything else is rejected. Every method except
                    es is seeded (es enumerates everything); compare()
                    still reseeds the CDCM half with the CWM winner unless
                    --no-seed-cdcm.
  --csv             Emit CSV instead of aligned text tables.
  -h, --help        Show this message.
)";

constexpr const char* kServeBenchUsage =
    R"(Usage: nocmap serve-bench [options]

Load-test the mapping-as-a-service engine (docs/serving.md): synthesize a
randomized request stream from a gen:SPEC population with a controllable
mix of exact duplicates (relabeled cores) and near-duplicates (relabeled +
payload-perturbed), replay it in batches through the canonical-form result
cache with warm-started search, and report latency percentiles, throughput,
cache hit rates and the warm-start speedup. The JSON report is written to
--out (default BENCH_serve.json; schema in docs/serving.md).

All report fields except wall-clock timings are deterministic in the
options: `results_digest` is byte-identical for any --threads, and — when
every request is unique or the cache is empty — identical between
--bypass-cache and the default cold path.

Options:
  --population SPEC Synthetic population supplying fresh applications
                    (workload gen: grammar, e.g. "apps=64,cores=8,seed=7";
                    default exactly that). Cores must fit the mesh.
  --requests N      Stream length (default: 1000).
  --dup-ratio X     Fraction of requests that are relabeled duplicates of
                    earlier ones (default: 0.35).
  --near-ratio X    Fraction that are relabeled + payload-perturbed
                    near-duplicates (default: 0.25). dup + near <= 1.
  --mesh WxH        Target NoC size (default: 3x3).
  --batch N         Requests per serving batch (default: 16).
  --threads N       Worker threads solving a batch's unique jobs
                    (default: 1). Purely a throughput knob.
  --seed N          Stream-synthesis and search seed (default: 1).
  --objective NAME  cwm | cdcm (default: cwm — the cheap objective keeps
                    the 1000-request replay fast; cdcm load-tests the
                    full wormhole-simulation path).
  --method NAME     auto | sa | bnb | portfolio (default: sa). es is
                    rejected: exhaustive search ignores warm starts.
  --ckpt-interval N Checkpointed incremental CDCM evaluation for the solve
                    paths (0 = auto cadence); results are bitwise-identical
                    either way, so cache entries stay interchangeable.
  --cache-capacity N
                    LRU capacity in cached results (default: 4096).
  --bypass-cache    Solve every request cold; the cache is neither read
                    nor written (the byte-identity baseline the CI leg
                    diffs against).
  --out PATH        Report path (default: BENCH_serve.json).
  --csv             Emit the summary table as CSV.
  -h, --help        Show this message.
)";

constexpr const char* kBenchUsage =
    R"(Usage: nocmap bench [options]

Run the full Table-1 suite (or one NoC size of it) through the Explorer and
print one ETR/ECS row per application — the reproduction of Table 2. With
--perf, run the evaluation-engine microbenchmark instead and write its JSON
report.

Options:
  --noc WxH         Only the applications of one NoC size (e.g. 3x2, 10x10).
  --tech NAME       Technology preset: example | 0.35u | 0.07u
                    (default: 0.07u).
  --method NAME     Search method: auto | sa | es | bnb (default: auto).
  --search NAME     Alias for --method.
  --bnb-nodes N     bnb node budget; also the budget of the --perf bnb
                    rows (default: 20,000,000; --perf default: 100,000).
  --topology NAME   NoC topology: mesh | torus | xmesh (default: mesh); each
                    application keeps its Table-1 grid size.
  --express-interval N
                    xmesh express-link spacing, k >= 2 (default: 2).
  --routing NAME    Routing algorithm: xy | yx | west-first | odd-even
                    (default: xy).
  --seed N          RNG seed driving the SA runs (default: 1).
  --threads N       Worker threads: applications are explored in parallel
                    (default: 1). The printed table is identical for any N.
  --chains N        Independent SA chains per model, best-of-N (default: 1).
  --cost NAME       Timing-aware objective: cdcm (default) or hybrid.
  --hybrid-cadence N
                    With --cost hybrid: CDCM verification cadence
                    (default: 8).
  --ckpt-interval N Checkpointed incremental CDCM evaluation as in
                    `nocmap explore` (0 = auto cadence). --perf/--scale
                    honour it for their checkpointed rows/members.
  --backend NAME    Evaluation backend: link (default) | flit; flit adds
                    --buffer-depth / --flow-control / --switching as in
                    `nocmap explore`.
  --buffer-depth N  (--backend flit) input-buffer flits per port (default 8).
  --flow-control NAME
                    (--backend flit) credit | onoff (default: credit).
  --switching NAME  (--backend flit) wormhole | vct (default: wormhole).
  --perf            Run the evaluation-engine microbenchmark (CWM full vs
                    delta, the CDCM ladder: one-shot / arena / swap-delta /
                    batch x threads / hybrid) and write the JSON report
                    instead of the suite. Honours --topology and
                    --express-interval; --threads sets the batch row's T.
  --scale           Run the paper-scale portfolio benchmark instead: anytime
                    best-cost-vs-moves curves for the large Table-1 boards
                    (default sizes 8x8, 10x10, 12x10), written as
                    BENCH_scale.json. Honours --sizes, --seed, --threads,
                    --bnb-nodes and --time-budget; every reported column
                    except wall_ms is identical for any --threads.
  --workload SRC    --scale: bench a workload source instead of the default
                    boards — suite, file:PATH or gen:SPEC (see
                    `nocmap workloads --help`). Excludes --sizes.
  --time-budget MS  --scale: per-member wall budget (see `explore --help`).
  --sizes LIST      --perf/--scale grid sizes, comma-separated WxH
                    (--perf default: 3x3,...,8x8,10x10,12x10;
                    --scale default: 8x8,10x10,12x10).
  --out FILE        --perf/--scale report path (default: BENCH_eval.json /
                    BENCH_scale.json).
  --csv             Emit CSV instead of aligned text tables.
  -h, --help        Show this message.
)";

constexpr const char* kWorkloadsUsage =
    R"(Usage: nocmap workloads [list|import|export|gen|validate] [options]

Workload ingestion: list, convert, generate and validate application sets
(docs/workloads.md). A workload source SRC is one of:

  suite        the compiled-in Table-1 suite
  file:PATH    a workload file — .json / .csv (the nocmap interchange
               format) or .tgff (TGFF task graphs)
  gen:SPEC     a synthetic population, e.g. gen:apps=200,cores=8,seed=7
               (keys: apps, cores, packets, bits, seed, connectivity,
               burstiness, hotspot, comp, jitter)

These sources are also what `--workload` accepts in explore / sweep /
bench --scale; explore needs a '#NAME' or '#INDEX' fragment to pick one
application from a multi-workload source.

Verbs:
  list [SRC]       List applications, statistics and the source provenance
                   (default verb; default source: the built-in suite).
  import PATH [--out FILE]
                   Read PATH (any supported format) and re-emit it
                   canonically: JSON on stdout, or --out file.json/.csv.
  export SRC --out FILE
                   Materialize any source to a canonical .json/.csv file.
  gen SPEC [--out FILE]
                   Shorthand for `export gen:SPEC`; JSON on stdout
                   without --out.
  validate SRC     Parse and validate, print one line per workload; exits
                   1 with a line/field diagnostic on the first error.

Options:
  --workload SRC    Alternative to the positional SRC.
  --out FILE        Output file for import/export/gen (.json or .csv).
  --csv             list: emit CSV instead of an aligned text table.
  -h, --help        Show this message.
)";

constexpr const char* kSweepUsage =
    R"(Usage: nocmap sweep [options]

Run `explore` once per (topology, routing, seed) combination and aggregate
the ETR/ECS spread — the cheap way to separate model effects from search
noise, and the way to compare topologies on equal footing.

Options:
  --seeds N         Number of seeds to run (default: 5; 1 in suite mode).
  --seed N          First seed (default: 1).
  --workload NAME   As in explore, plus multi-application sources: "suite"
                    runs the full 18-application Table-1 suite, file:PATH /
                    gen:SPEC run every application the source holds (each
                    on its own NoC size).
  --noc WxH         With a multi-application source: only its applications
                    of one NoC size (e.g. 3x2).
  --topology LIST   Comma-separated topologies to sweep, e.g.
                    mesh,torus,xmesh (default: mesh).
  --routing LIST    Comma-separated routing algorithms, e.g. xy,odd-even
                    (default: xy).
  --threads N       Explore the sweep rows in parallel (default: 1); the
                    emitted rows are identical for any N.
  All other `nocmap explore` mesh/tech/method/chains/cost options apply,
  including --backend flit with --buffer-depth/--flow-control/--switching.
  With one topology, one routing and a non-suite workload the historical
  per-seed table is printed; otherwise one row per (topology, routing,
  application, seed) plus per-combination aggregates.
  --csv             Emit CSV instead of aligned text tables.
  -h, --help        Show this message.
)";

// --- Option parsing ----------------------------------------------------------

std::uint64_t parse_u64(const std::string& flag, const std::string& value) {
  // Digits only: std::stoull alone would wrap "-1" to UINT64_MAX.
  if (value.empty() ||
      value.find_first_not_of("0123456789") != std::string::npos) {
    throw UsageError(flag + " expects a non-negative integer, got '" + value +
                     "'");
  }
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw UsageError(flag + " value out of range: '" + value + "'");
  }
}

/// "4x4", "4X4" or "4 x 4" -> (4, 4).
std::pair<std::uint32_t, std::uint32_t> parse_mesh(const std::string& flag,
                                                   const std::string& value) {
  std::string s;
  for (char c : value) {
    if (c == ' ') continue;
    s.push_back(c == 'X' ? 'x' : c);
  }
  std::size_t sep = s.find('x');
  if (sep == std::string::npos || sep == 0 || sep + 1 == s.size()) {
    throw UsageError(flag + " expects WxH (e.g. 4x4), got '" + value + "'");
  }
  auto w = parse_u64(flag, s.substr(0, sep));
  auto h = parse_u64(flag, s.substr(sep + 1));
  // Bound each dimension before any uint32 narrowing, and the tile count to
  // something a mapping search could conceivably handle.
  constexpr std::uint64_t kMaxTiles = 1'000'000;
  if (w > kMaxTiles || h > kMaxTiles || w * h > kMaxTiles) {
    throw UsageError(flag + " mesh too large (at most 1,000,000 tiles), got '" +
                     value + "'");
  }
  if (w == 0 || h == 0 || w * h < 2) {
    throw UsageError(flag + " needs at least two tiles, got '" + value + "'");
  }
  return {static_cast<std::uint32_t>(w), static_cast<std::uint32_t>(h)};
}

energy::Technology parse_tech(const std::string& value) {
  if (value == "example") return energy::example_technology();
  if (value == "0.35u" || value == "0.35") return energy::technology_0_35u();
  if (value == "0.07u" || value == "0.07") return energy::technology_0_07u();
  throw UsageError("--tech expects example | 0.35u | 0.07u, got '" + value +
                   "'");
}

core::SearchMethod parse_method(const std::string& value) {
  if (value == "auto") return core::SearchMethod::kAuto;
  if (value == "sa") return core::SearchMethod::kSimulatedAnnealing;
  if (value == "es") return core::SearchMethod::kExhaustive;
  if (value == "bnb") return core::SearchMethod::kBranchAndBound;
  if (value == "portfolio" || value == "pf") {
    return core::SearchMethod::kPortfolio;
  }
  throw UsageError("--method expects auto | sa | es | bnb | portfolio, got '" +
                   value + "'");
}

sim::SimBackend parse_backend(const std::string& value) {
  if (value == "link" || value == "link-claim") {
    return sim::SimBackend::kLinkClaim;
  }
  if (value == "flit") return sim::SimBackend::kFlit;
  throw UsageError("--backend expects link | flit, got '" + value + "'");
}

sim::FlowControl parse_flow_control(const std::string& value) {
  if (value == "credit") return sim::FlowControl::kCredit;
  if (value == "onoff" || value == "on-off") return sim::FlowControl::kOnOff;
  throw UsageError("--flow-control expects credit | onoff, got '" + value +
                   "'");
}

sim::Switching parse_switching(const std::string& value) {
  if (value == "wormhole") return sim::Switching::kWormhole;
  if (value == "vct" || value == "virtual-cut-through") {
    return sim::Switching::kVirtualCutThrough;
  }
  throw UsageError("--switching expects wormhole | vct, got '" + value + "'");
}

noc::RoutingAlgorithm parse_routing(const std::string& value) {
  try {
    return noc::routing_algorithm_from_name(value);
  } catch (const std::invalid_argument&) {
    throw UsageError("--routing expects xy | yx | west-first | odd-even, got '" +
                     value + "'");
  }
}

/// "a,b,c" -> {"a", "b", "c"}; empty items are usage errors.
std::vector<std::string> split_list(const std::string& flag,
                                    const std::string& value) {
  std::vector<std::string> items;
  std::string item;
  std::istringstream is(value);
  while (std::getline(is, item, ',')) {
    if (item.empty()) throw UsageError(flag + ": empty list item");
    items.push_back(item);
  }
  if (items.empty()) throw UsageError(flag + " expects a value");
  return items;
}

std::vector<std::string> parse_topologies(const std::string& value) {
  std::vector<std::string> kinds = split_list("--topology", value);
  for (const std::string& kind : kinds) {
    const auto& known = noc::topology_kinds();
    if (std::find(known.begin(), known.end(), kind) == known.end()) {
      throw UsageError("--topology expects mesh | torus | xmesh, got '" +
                       kind + "'");
    }
  }
  return kinds;
}

std::vector<noc::RoutingAlgorithm> parse_routings(const std::string& value) {
  std::vector<noc::RoutingAlgorithm> algos;
  for (const std::string& name : split_list("--routing", value)) {
    algos.push_back(parse_routing(name));
  }
  return algos;
}

/// Options shared by explore / bench / sweep.
struct RunOptions {
  std::string workload = "paper-example";
  bool workload_set = false;  ///< --workload was given explicitly.
  std::optional<std::pair<std::uint32_t, std::uint32_t>> mesh;
  std::optional<energy::Technology> tech;
  core::SearchMethod method = core::SearchMethod::kAuto;
  std::uint64_t bnb_nodes = 0;  ///< 0 = the engine's default budget.
  /// Sweep accepts comma-separated lists; every other subcommand requires a
  /// single entry (enforced by require_single_noc()).
  std::vector<std::string> topologies = {"mesh"};
  std::vector<noc::RoutingAlgorithm> routings = {noc::RoutingAlgorithm::kXY};
  std::uint64_t express_interval = 2;
  std::uint64_t seed = 1;
  bool seed_cdcm_with_cwm = true;
  std::uint64_t random_cores = 8;
  std::uint64_t random_packets = 32;
  std::uint64_t random_bits = 4096;
  std::uint64_t threads = 1;
  std::uint64_t chains = 1;
  core::TimingCostMode timing_cost = core::TimingCostMode::kCdcm;
  std::uint64_t hybrid_cadence = 8;
  /// --ckpt-interval: presence enables checkpointed incremental CDCM
  /// evaluation; the value is the snapshot cadence in pops (0 = auto).
  bool checkpoints = false;
  std::uint64_t ckpt_interval = 0;
  sim::SimBackend sim_backend = sim::SimBackend::kLinkClaim;
  std::uint64_t buffer_depth = 8;
  sim::FlowControl flow_control = sim::FlowControl::kCredit;
  sim::Switching switching = sim::Switching::kWormhole;
  /// Track explicit use of the flit-only knobs so --buffer-depth & co.
  /// without --backend flit can be rejected instead of silently ignored.
  bool flit_knob_set = false;
  /// bench --perf / --scale only: explicit grid sizes.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> perf_sizes;
  std::optional<std::string> noc_filter;  // bench only
  bool perf = false;                      // bench only
  bool scale = false;                     // bench only
  std::optional<std::string> out_path;    // bench --perf/--scale only
  /// explore/sweep/bench --scale: per-chain / per-member wall budget in ms
  /// (0 = none). Honored at temperature-step boundaries only, so any cut is
  /// reproducible from the recorded move-count checkpoint.
  std::uint64_t time_budget_ms = 0;
  std::uint64_t num_seeds = 5;            // sweep only
  bool seeds_set = false;                 // sweep only
  /// explore only: warm-start mapping file (--seed-mapping).
  std::optional<std::string> seed_mapping_path;
  bool csv = false;
};

/// Parse a --seed-mapping file: whitespace- or comma-separated tile ids,
/// one per core. Count/range/injectivity are validated by the Explorer,
/// which knows the application and topology.
std::vector<noc::TileId> load_seed_mapping(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw UsageError("--seed-mapping: cannot read '" + path + "'");
  std::vector<noc::TileId> tiles;
  std::string line;
  while (std::getline(in, line)) {
    // Strip `#` line comments, then accept whitespace or comma separators.
    line = line.substr(0, line.find('#'));
    std::istringstream ls(line);
    std::string token;
    while (ls >> token) {
      std::istringstream ts(token);
      std::string item;
      while (std::getline(ts, item, ',')) {
        if (item.empty()) continue;
        const std::uint64_t v = parse_u64("--seed-mapping", item);
        if (v > std::numeric_limits<noc::TileId>::max()) {
          throw UsageError("--seed-mapping: tile id " + item +
                           " out of range");
        }
        tiles.push_back(static_cast<noc::TileId>(v));
      }
    }
  }
  if (tiles.empty()) {
    throw UsageError("--seed-mapping: '" + path + "' contains no tile ids");
  }
  return tiles;
}

/// Parse argv[2..] for a subcommand. `usage` is printed for -h/--help;
/// `allowed` is the set of flags this subcommand actually consumes — anything
/// else is a usage error rather than a silently ignored no-op.
RunOptions parse_run_options(int argc, char** argv, const char* usage,
                             const std::vector<std::string>& allowed) {
  RunOptions opts;
  auto value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) throw UsageError(flag + " expects a value");
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      std::cout << usage;
      std::exit(0);
    }
    if (a != "--csv" &&
        std::find(allowed.begin(), allowed.end(), a) == allowed.end()) {
      std::string hint = "option '" + a + "' is not valid for `nocmap " +
                         std::string(argv[1]) + "`";
      throw UsageError(hint);
    }
    if (a == "--workload") {
      opts.workload = value(i, a);
      opts.workload_set = true;
    } else if (a == "--mesh") {
      opts.mesh = parse_mesh(a, value(i, a));
    } else if (a == "--tech") {
      opts.tech = parse_tech(value(i, a));
    } else if (a == "--method" || a == "--search") {
      opts.method = parse_method(value(i, a));
    } else if (a == "--bnb-nodes") {
      opts.bnb_nodes = parse_u64(a, value(i, a));
      if (opts.bnb_nodes == 0) throw UsageError("--bnb-nodes must be >= 1");
    } else if (a == "--topology") {
      opts.topologies = parse_topologies(value(i, a));
    } else if (a == "--express-interval") {
      opts.express_interval = parse_u64(a, value(i, a));
      if (opts.express_interval < 2 || opts.express_interval > 1'000'000) {
        throw UsageError("--express-interval must be in [2, 1,000,000]");
      }
    } else if (a == "--routing") {
      opts.routings = parse_routings(value(i, a));
    } else if (a == "--seed") {
      opts.seed = parse_u64(a, value(i, a));
    } else if (a == "--seeds") {
      opts.num_seeds = parse_u64(a, value(i, a));
      opts.seeds_set = true;
      if (opts.num_seeds == 0) throw UsageError("--seeds must be >= 1");
    } else if (a == "--no-seed-cdcm") {
      opts.seed_cdcm_with_cwm = false;
    } else if (a == "--cores") {
      opts.random_cores = parse_u64(a, value(i, a));
    } else if (a == "--packets") {
      opts.random_packets = parse_u64(a, value(i, a));
    } else if (a == "--bits") {
      opts.random_bits = parse_u64(a, value(i, a));
    } else if (a == "--threads") {
      opts.threads = parse_u64(a, value(i, a));
      if (opts.threads == 0 || opts.threads > 1024) {
        throw UsageError("--threads must be in [1, 1024]");
      }
    } else if (a == "--chains") {
      opts.chains = parse_u64(a, value(i, a));
      if (opts.chains == 0 || opts.chains > 4096) {
        throw UsageError("--chains must be in [1, 4096]");
      }
    } else if (a == "--cost") {
      const std::string v = value(i, a);
      if (v == "cdcm") {
        opts.timing_cost = core::TimingCostMode::kCdcm;
      } else if (v == "hybrid") {
        opts.timing_cost = core::TimingCostMode::kHybrid;
      } else {
        throw UsageError("--cost expects cdcm | hybrid, got '" + v + "'");
      }
    } else if (a == "--hybrid-cadence") {
      opts.hybrid_cadence = parse_u64(a, value(i, a));
      if (opts.hybrid_cadence > 1'000'000) {
        throw UsageError("--hybrid-cadence must be at most 1,000,000");
      }
    } else if (a == "--ckpt-interval") {
      opts.checkpoints = true;
      opts.ckpt_interval = parse_u64(a, value(i, a));
      if (opts.ckpt_interval > 1'000'000'000) {
        throw UsageError("--ckpt-interval must be at most 1,000,000,000");
      }
    } else if (a == "--backend") {
      opts.sim_backend = parse_backend(value(i, a));
    } else if (a == "--buffer-depth") {
      opts.buffer_depth = parse_u64(a, value(i, a));
      opts.flit_knob_set = true;
      if (opts.buffer_depth == 0 || opts.buffer_depth > (1u << 20)) {
        throw UsageError("--buffer-depth must be in [1, 1,048,576]");
      }
    } else if (a == "--flow-control") {
      opts.flow_control = parse_flow_control(value(i, a));
      opts.flit_knob_set = true;
    } else if (a == "--switching") {
      opts.switching = parse_switching(value(i, a));
      opts.flit_knob_set = true;
    } else if (a == "--sizes") {
      for (const std::string& item : split_list(a, value(i, a))) {
        opts.perf_sizes.push_back(parse_mesh(a, item));
      }
    } else if (a == "--perf") {
      opts.perf = true;
    } else if (a == "--scale") {
      opts.scale = true;
    } else if (a == "--time-budget") {
      opts.time_budget_ms = parse_u64(a, value(i, a));
      if (opts.time_budget_ms == 0 || opts.time_budget_ms > 86'400'000) {
        throw UsageError("--time-budget expects milliseconds in [1, 86,400,000]");
      }
    } else if (a == "--seed-mapping") {
      opts.seed_mapping_path = value(i, a);
    } else if (a == "--out") {
      opts.out_path = value(i, a);
    } else if (a == "--noc") {
      auto wh = parse_mesh(a, value(i, a));
      opts.noc_filter =
          std::to_string(wh.first) + " x " + std::to_string(wh.second);
    } else if (a == "--csv") {
      opts.csv = true;
    } else {
      throw UsageError("unknown option '" + a + "'");
    }
  }
  if (opts.flit_knob_set && opts.sim_backend != sim::SimBackend::kFlit) {
    throw UsageError(
        "--buffer-depth/--flow-control/--switching require --backend flit");
  }
  return opts;
}

// --- Workload resolution -----------------------------------------------------

/// Single-entry check for subcommands without sweep semantics.
void require_single_noc(const RunOptions& opts, const char* sub) {
  if (opts.topologies.size() != 1 || opts.routings.size() != 1) {
    throw UsageError(std::string("`nocmap ") + sub +
                     "` takes a single --topology and --routing "
                     "(comma-separated lists are for `nocmap sweep`)");
  }
}

noc::TopologyOptions topology_options(const RunOptions& opts) {
  noc::TopologyOptions to;
  to.express_interval = static_cast<std::uint32_t>(opts.express_interval);
  return to;
}

/// Split "file:apps.json#romberg-v1" into (source spec, fragment).
std::pair<std::string, std::string> split_fragment(const std::string& spec) {
  const std::size_t hash = spec.rfind('#');
  if (hash == std::string::npos) return {spec, ""};
  return {spec.substr(0, hash), spec.substr(hash + 1)};
}

/// make_workload_source() with spec mistakes reported as usage errors
/// (exit 2); malformed file *contents* stay ParseError (exit 1).
std::unique_ptr<workload::WorkloadSource> open_source(
    const std::string& spec) {
  try {
    return workload::make_workload_source(spec);
  } catch (const std::invalid_argument& e) {
    throw UsageError(e.what());
  }
}

/// A workload bound to its target topology, ready for the Explorer.
struct BoundWorkload {
  std::string name;
  graph::Cdcg cdcg;
  std::unique_ptr<noc::Topology> topo;
  energy::Technology tech;
};

BoundWorkload resolve_workload(const RunOptions& opts) {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  graph::Cdcg cdcg;
  std::string display_name = opts.workload;
  energy::Technology default_tech = energy::technology_0_07u();
  const auto [source_spec, fragment] = split_fragment(opts.workload);

  if (workload::is_source_spec(source_spec)) {
    const std::unique_ptr<workload::WorkloadSource> source =
        open_source(source_spec);
    std::size_t index = 0;
    if (!fragment.empty()) {
      const bool numeric =
          std::all_of(fragment.begin(), fragment.end(), [](unsigned char c) {
            return c >= '0' && c <= '9';
          });
      if (numeric) {
        index = static_cast<std::size_t>(parse_u64("--workload", fragment));
        if (index >= source->size()) {
          throw UsageError("--workload fragment #" + fragment +
                           " is out of range: " + source->name() + " holds " +
                           std::to_string(source->size()) + " workloads");
        }
      } else {
        index = source->find(fragment);
        if (index == source->size()) {
          throw UsageError("no workload named '" + fragment + "' in " +
                           source->name());
        }
      }
    } else if (source->size() != 1) {
      throw UsageError("source " + source->name() + " holds " +
                       std::to_string(source->size()) +
                       " workloads; select one with a '#' fragment, e.g. "
                       "--workload '" +
                       source_spec + "#NAME' (or #INDEX)");
    }
    workload::WorkloadApp app = source->app(index);
    // stderr: stdout stays parseable under --csv.
    std::cerr << "workload source: " << source->provenance() << "\n";
    display_name = app.name;
    width = app.noc_width;
    height = app.noc_height;
    cdcg = std::move(app.cdcg);
  } else if (opts.workload == "paper-example") {
    cdcg = workload::paper_example_cdcg();
    width = 2;
    height = 2;
    default_tech = energy::example_technology();
  } else if (opts.workload == "random") {
    constexpr std::uint64_t kMaxRandomSize = 1'000'000;
    if (opts.random_cores > kMaxRandomSize ||
        opts.random_packets > kMaxRandomSize) {
      throw UsageError("--cores/--packets are limited to 1,000,000");
    }
    workload::RandomCdcgParams params;
    params.num_cores = static_cast<std::uint32_t>(opts.random_cores);
    params.num_packets = static_cast<std::uint32_t>(opts.random_packets);
    params.total_bits = opts.random_bits;
    util::Rng rng(opts.seed);
    cdcg = workload::generate_random_cdcg(params, rng);
    // Smallest near-square mesh that fits the cores.
    std::uint32_t tiles = params.num_cores < 2 ? 2 : params.num_cores;
    width = 1;
    while (width * width < tiles) ++width;
    height = (tiles + width - 1) / width;
  } else {
    bool found = false;
    for (workload::SuiteEntry& e : workload::table1_suite()) {
      if (e.name == opts.workload) {
        cdcg = std::move(e.cdcg);
        width = e.noc_width;
        height = e.noc_height;
        found = true;
        break;
      }
    }
    if (!found) {
      throw UsageError("unknown workload '" + opts.workload +
                       "' (see `nocmap workloads`)");
    }
  }

  if (opts.mesh) {
    width = opts.mesh->first;
    height = opts.mesh->second;
  }
  if (cdcg.num_cores() > static_cast<std::size_t>(width) * height) {
    throw UsageError("workload '" + opts.workload + "' has " +
                     std::to_string(cdcg.num_cores()) +
                     " cores but the mesh only has " +
                     std::to_string(width * height) + " tiles");
  }
  return BoundWorkload{std::move(display_name), std::move(cdcg),
                       noc::make_topology(opts.topologies.front(), width,
                                          height, topology_options(opts)),
                       opts.tech ? *opts.tech : default_tech};
}

core::ExplorerOptions explorer_options(const RunOptions& opts,
                                       const energy::Technology& tech) {
  core::ExplorerOptions eo;
  eo.tech = tech;
  eo.routing = opts.routings.front();
  eo.method = opts.method;
  eo.seed = opts.seed;
  eo.seed_cdcm_with_cwm = opts.seed_cdcm_with_cwm;
  eo.threads = static_cast<std::uint32_t>(opts.threads);
  eo.sa_chains = static_cast<std::uint32_t>(opts.chains);
  eo.timing_cost = opts.timing_cost;
  eo.hybrid_cadence = static_cast<std::uint32_t>(opts.hybrid_cadence);
  eo.cdcm_checkpoints = opts.checkpoints;
  eo.ckpt_interval = static_cast<std::uint32_t>(opts.ckpt_interval);
  eo.sim_backend = opts.sim_backend;
  eo.buffer_depth = static_cast<std::uint32_t>(opts.buffer_depth);
  eo.flow_control = opts.flow_control;
  eo.switching = opts.switching;
  if (opts.bnb_nodes != 0) eo.bnb.max_nodes = opts.bnb_nodes;
  eo.time_budget_ms = static_cast<double>(opts.time_budget_ms);
  if (opts.seed_mapping_path) {
    eo.seed_assignment = load_seed_mapping(*opts.seed_mapping_path);
  }
  return eo;
}

/// Run `job(i)` for i in [0, count) on up to `threads` workers. Results are
/// produced by index, so the output order — and everything the caller
/// renders — is independent of the thread count.
void parallel_for_index(std::uint64_t threads, std::size_t count,
                        const std::function<void(std::size_t)>& job) {
  const std::size_t workers =
      std::min<std::size_t>(std::max<std::uint64_t>(threads, 1), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) job(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::mutex error_mutex;
  std::exception_ptr first_error;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1);
        if (i >= count) return;
        try {
          job(i);
        } catch (...) {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void print_table(const util::TextTable& table, bool csv) {
  std::cout << (csv ? table.to_csv() : table.to_string());
}

/// Cell formatting that adapts to the output mode: human units in table
/// mode, raw machine-parseable numbers in CSV mode (units move into the
/// header via head()).
class Fmt {
 public:
  explicit Fmt(bool csv) : csv_(csv) {}

  std::string head(const std::string& plain, const std::string& unit) const {
    return csv_ ? plain + "_" + unit : plain;
  }
  std::string count(std::uint64_t v) const {
    return csv_ ? std::to_string(v) : util::format_grouped(v);
  }
  std::string energy(double joule) const {
    if (!csv_) return util::format_energy_j(joule);
    std::ostringstream os;
    os.precision(9);
    os << joule;
    return os.str();
  }
  std::string time(double ns) const {
    return csv_ ? util::format_fixed(ns, 3) : util::format_time_ns(ns);
  }
  std::string percent(double fraction) const {
    return csv_ ? util::format_fixed(fraction * 100.0, 2)
                : util::format_percent(fraction);
  }

 private:
  bool csv_;
};

// --- Subcommands -------------------------------------------------------------

int cmd_explore(const RunOptions& opts) {
  require_single_noc(opts, "explore");
  BoundWorkload wl = resolve_workload(opts);
  core::Explorer explorer(wl.cdcg, *wl.topo, explorer_options(opts, wl.tech));
  core::Comparison cmp = explorer.compare();
  Fmt fmt(opts.csv);

  util::TextTable table(
      {"Model", "Method", "Evaluations", fmt.head("Objective", "J"),
       fmt.head("Texec", "ns"), fmt.head("Dynamic E", "J"),
       fmt.head("Static E", "J"), fmt.head("Total E", "J"),
       fmt.head("Contention", "ns")});
  table.set_title("nocmap explore — " + wl.name + " on " +
                  wl.topo->label() + ", " + wl.tech.name);
  for (const core::ModelOutcome* outcome : {&cmp.cwm, &cmp.cdcm}) {
    table.add_row({outcome->model, outcome->method,
                   fmt.count(outcome->evaluations),
                   fmt.energy(outcome->objective_j),
                   fmt.time(outcome->sim.texec_ns),
                   fmt.energy(outcome->sim.energy.dynamic_j),
                   fmt.energy(outcome->sim.energy.static_j),
                   fmt.energy(outcome->sim.energy.total_j()),
                   fmt.time(outcome->sim.total_contention_ns)});
  }
  print_table(table, opts.csv);

  util::TextTable summary({"Metric", fmt.head("Value", "pct")});
  summary.add_row({"ETR (execution-time reduction)",
                   fmt.percent(cmp.execution_time_reduction())});
  summary.add_row({"ECS (energy saving, " + wl.tech.name + ")",
                   fmt.percent(cmp.energy_saving())});
  print_table(summary, opts.csv);

  if (opts.method == core::SearchMethod::kBranchAndBound) {
    // For a completed search (Complete = yes) every counter is
    // deterministic for any --threads value (the engine's subtree tasks
    // never share pruning state), so this table is safe to diff in CI.
    // Budget-truncated runs consume the global budget in thread order and
    // are only reproducible at --threads 1.
    util::TextTable bnb({"Model", "Budget", "Tested", "Visited", "Pruned",
                         fmt.head("Pruned", "pct"), "Complete"});
    bnb.set_title("branch & bound — nodes");
    for (const core::ModelOutcome* outcome : {&cmp.cwm, &cmp.cdcm}) {
      const double denom = static_cast<double>(outcome->bnb_nodes_visited) +
                           static_cast<double>(outcome->bnb_nodes_pruned);
      bnb.add_row({outcome->model, fmt.count(outcome->bnb_node_budget),
                   fmt.count(outcome->bnb_nodes_tested),
                   fmt.count(outcome->bnb_nodes_visited),
                   fmt.count(outcome->bnb_nodes_pruned),
                   fmt.percent(denom > 0
                                   ? static_cast<double>(
                                         outcome->bnb_nodes_pruned) / denom
                                   : 0.0),
                   outcome->bnb_complete ? "yes" : "no"});
    }
    print_table(bnb, opts.csv);
  }

  if (opts.method == core::SearchMethod::kPortfolio) {
    // Every column is deterministic in (seed, roster, budgets) — identical
    // for any --threads — so this table is safe to diff in CI.
    util::TextTable pf({"Model", "Members", "Winner", "Polish", "Cut"});
    pf.set_title("portfolio — racing roster");
    for (const core::ModelOutcome* outcome : {&cmp.cwm, &cmp.cdcm}) {
      pf.add_row({outcome->model, std::to_string(outcome->portfolio_members),
                  outcome->portfolio_winner,
                  fmt.count(outcome->portfolio_polish),
                  outcome->portfolio_cut ? "yes" : "no"});
    }
    print_table(pf, opts.csv);
  }
  return 0;
}

int cmd_bench_perf(const RunOptions& opts) {
  require_single_noc(opts, "bench");
  core::EvalBenchOptions options;
  // Quick budgets: this entry point doubles as the CI smoke step. The
  // full-budget run is the bench_cost_eval binary.
  options.min_time_s = 0.05;
  options.seed = opts.seed;
  options.sizes = opts.perf_sizes;
  if (options.sizes.empty()) {
    // The quick CLI ladder: the library's square 3x3..8x8 default plus the
    // paper's two large boards. run_eval_bench caps the B&B node budget
    // past 64 tiles, so these rows stay smoke-test cheap. (The full-budget
    // bench_cost_eval binary keeps the historical square ladder.)
    for (std::uint32_t side = 3; side <= 8; ++side) {
      options.sizes.emplace_back(side, side);
    }
    options.sizes.emplace_back(10, 10);
    options.sizes.emplace_back(12, 10);
  }
  options.topology = opts.topologies.front();
  options.express_interval =
      static_cast<std::uint32_t>(opts.express_interval);
  options.batch_threads =
      std::max<std::uint32_t>(2, static_cast<std::uint32_t>(opts.threads));
  options.hybrid_cadence = static_cast<std::uint32_t>(opts.hybrid_cadence);
  options.ckpt_interval = static_cast<std::uint32_t>(opts.ckpt_interval);
  options.alloc_count = &cli_allocation_count;
  // Quick default budget too: the 3x3/4x4 exact searches finish far below
  // it (the 4x4 bench instance needs ~36k tests), and the larger boards
  // just report a truncated run without stalling the smoke.
  options.bnb_max_nodes = opts.bnb_nodes != 0 ? opts.bnb_nodes : 100'000;
  const core::EvalBenchReport report = core::run_eval_bench(options);

  Fmt fmt(opts.csv);
  const std::string batch_t =
      "CDCM batch x" + std::to_string(options.batch_threads);
  util::TextTable table(
      {"NoC", "Cores", fmt.head("CWM legacy", "eval_s"),
       fmt.head("CWM delta", "eval_s"),
       fmt.head("CDCM 1-shot", "eval_s"), fmt.head("CDCM reuse", "eval_s"),
       fmt.head("CDCM delta", "eval_s"), fmt.head("CDCM ckpt", "eval_s"),
       fmt.head(batch_t, "eval_s"),
       fmt.head("Hybrid", "eval_s"), fmt.head("B&B pruned", "pct"),
       "B&B done"});
  table.set_title("nocmap bench --perf — evaluations/second, " +
                  options.topology);
  for (const core::EvalBenchRow& r : report.rows) {
    table.add_row({std::to_string(r.mesh_width) + "x" +
                       std::to_string(r.mesh_height),
                   std::to_string(r.num_cores),
                   fmt.count(static_cast<std::uint64_t>(r.cwm_legacy_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.cwm_delta_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.cdcm_oneshot_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.cdcm_reuse_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.cdcm_delta_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.cdcm_ckpt_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.cdcm_batch_t_per_s)),
                   fmt.count(static_cast<std::uint64_t>(r.hybrid_per_s)),
                   fmt.percent(r.bnb_pruned_frac()),
                   r.bnb_complete ? "yes" : "no"});
  }
  print_table(table, opts.csv);

  const std::string out_path = opts.out_path.value_or("BENCH_eval.json");
  std::ofstream out(out_path);
  if (!out) {
    throw std::runtime_error("cannot write " + out_path);
  }
  out << report.to_json();
  // stderr: stdout must stay parseable under --csv.
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

int cmd_bench_scale(const RunOptions& opts) {
  require_single_noc(opts, "bench");
  if (opts.topologies.front() != "mesh") {
    throw UsageError("bench --scale runs the paper's mesh boards only");
  }
  core::ScaleBenchOptions options;
  if (!opts.perf_sizes.empty()) options.sizes = opts.perf_sizes;
  if (opts.workload_set) {
    if (!opts.perf_sizes.empty()) {
      throw UsageError(
          "bench --scale takes either --workload or --sizes, not both");
    }
    const auto [spec, fragment] = split_fragment(opts.workload);
    if (!workload::is_source_spec(spec)) {
      throw UsageError("bench --scale --workload expects a source spec "
                       "(suite, file:PATH or gen:SPEC), got '" +
                       opts.workload + "'");
    }
    if (!fragment.empty()) {
      throw UsageError("bench --scale benches whole sources; drop the '#" +
                       fragment + "' fragment");
    }
    const std::unique_ptr<workload::WorkloadSource> source =
        open_source(spec);
    std::cerr << "workload source: " << source->provenance() << "\n";
    for (std::size_t i = 0; i < source->size(); ++i) {
      workload::WorkloadApp app = source->app(i);
      core::ScaleBenchWorkload w;
      w.name = std::move(app.name);
      w.width = app.noc_width;
      w.height = app.noc_height;
      w.cdcg = std::move(app.cdcg);
      options.workloads.push_back(std::move(w));
    }
  }
  options.seed = opts.seed;
  options.threads = static_cast<std::uint32_t>(opts.threads);
  options.time_budget_ms = static_cast<double>(opts.time_budget_ms);
  if (opts.bnb_nodes != 0) options.bnb_nodes = opts.bnb_nodes;
  const core::ScaleBenchReport report = core::run_scale_bench(options);

  // Deterministic columns only (best_j, moves, winner — never wall clock),
  // so CI can diff this table across thread counts byte-for-byte.
  Fmt fmt(opts.csv);
  util::TextTable table({"NoC", "Application", "Cores", "Members", "Winner",
                         fmt.head("Greedy", "J"), fmt.head("Best", "J"),
                         "Evaluations", "Polish", "Cut"});
  table.set_title("nocmap bench --scale — portfolio anytime search");
  for (const core::ScaleBenchRow& r : report.rows) {
    table.add_row({std::to_string(r.mesh_width) + "x" +
                       std::to_string(r.mesh_height),
                   r.application, std::to_string(r.num_cores),
                   std::to_string(r.members), r.winner,
                   fmt.energy(r.initial_j), fmt.energy(r.best_j),
                   fmt.count(r.evaluations), fmt.count(r.polish_applied),
                   r.time_cut ? "yes" : "no"});
  }
  print_table(table, opts.csv);

  const std::string out_path = opts.out_path.value_or("BENCH_scale.json");
  std::ofstream out(out_path);
  if (!out) {
    throw std::runtime_error("cannot write " + out_path);
  }
  out << report.to_json();
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

int cmd_bench(const RunOptions& opts) {
  if (opts.perf && opts.scale) {
    throw UsageError("--perf and --scale are mutually exclusive");
  }
  if (opts.workload_set && !opts.scale) {
    throw UsageError("`nocmap bench` accepts --workload only with --scale "
                     "(the plain bench always runs the Table-1 suite)");
  }
  if (opts.perf) return cmd_bench_perf(opts);
  if (opts.scale) return cmd_bench_scale(opts);
  require_single_noc(opts, "bench");
  std::vector<workload::SuiteEntry> suite =
      opts.noc_filter ? workload::table1_suite_for(*opts.noc_filter)
                      : workload::table1_suite();
  energy::Technology tech = opts.tech ? *opts.tech : energy::technology_0_07u();

  Fmt fmt(opts.csv);
  util::TextTable table({"Application", "NoC", "Cores", "Packets", "Bits",
                         "Method", fmt.head("ETR", "pct"),
                         fmt.head("ECS", "pct")});
  // The historical title is kept byte-for-byte on the mesh path.
  const std::string& topology = opts.topologies.front();
  table.set_title("nocmap bench — Table-1 suite, " + tech.name +
                  (topology == "mesh" ? "" : ", " + topology));

  // Explore every application, in parallel when --threads allows: each entry
  // is an independent Explorer run with its own seed-derived randomness, so
  // the collected rows do not depend on the thread count. The worker budget
  // is spent at the application level; each Explorer runs its chains
  // serially (otherwise --threads would multiply into threads^2 workers).
  RunOptions per_app = opts;
  if (suite.size() > 1) per_app.threads = 1;
  std::vector<std::optional<core::Comparison>> comparisons(suite.size());
  parallel_for_index(opts.threads, suite.size(), [&](std::size_t i) {
    const workload::SuiteEntry& entry = suite[i];
    const std::unique_ptr<noc::Topology> topo = noc::make_topology(
        topology, entry.noc_width, entry.noc_height, topology_options(opts));
    core::Explorer explorer(entry.cdcg, *topo,
                            explorer_options(per_app, tech));
    comparisons[i] = explorer.compare();
  });

  std::string current_size;
  for (std::size_t i = 0; i < suite.size(); ++i) {
    const workload::SuiteEntry& entry = suite[i];
    const core::Comparison& cmp = *comparisons[i];
    if (!current_size.empty() && entry.noc_size_label() != current_size) {
      table.add_separator();
    }
    current_size = entry.noc_size_label();
    table.add_row({entry.name, entry.noc_size_label(),
                   std::to_string(entry.paper_cores),
                   std::to_string(entry.paper_packets),
                   fmt.count(entry.paper_bits), cmp.cdcm.method,
                   fmt.percent(cmp.execution_time_reduction()),
                   fmt.percent(cmp.energy_saving())});
  }
  print_table(table, opts.csv);
  return 0;
}

double parse_ratio(const std::string& flag, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double v = std::stod(value, &pos);
    if (pos != value.size() || !(v >= 0.0) || !(v <= 1.0)) {
      throw std::invalid_argument(value);
    }
    return v;
  } catch (const std::exception&) {
    throw UsageError(flag + " expects a fraction in [0, 1], got '" + value +
                     "'");
  }
}

int cmd_serve_bench(int argc, char** argv) {
  serve::ServeBenchOptions options;
  options.serve.explorer.tech = energy::technology_0_07u();
  options.serve.explorer.method = core::SearchMethod::kSimulatedAnnealing;
  options.serve.objective = serve::Objective::kCwm;
  std::string out_path = "BENCH_serve.json";
  bool csv = false;

  auto value = [&](int& i, const std::string& flag) -> std::string {
    if (i + 1 >= argc) throw UsageError(flag + " expects a value");
    return argv[++i];
  };
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      std::cout << kServeBenchUsage;
      return 0;
    } else if (a == "--population") {
      options.population = value(i, a);
    } else if (a == "--requests") {
      options.requests =
          static_cast<std::uint32_t>(parse_u64(a, value(i, a)));
      if (options.requests == 0 || options.requests > 10'000'000) {
        throw UsageError("--requests must be in [1, 10,000,000]");
      }
    } else if (a == "--dup-ratio") {
      options.dup_ratio = parse_ratio(a, value(i, a));
    } else if (a == "--near-ratio") {
      options.near_ratio = parse_ratio(a, value(i, a));
    } else if (a == "--mesh") {
      const auto wh = parse_mesh(a, value(i, a));
      options.mesh_width = wh.first;
      options.mesh_height = wh.second;
    } else if (a == "--batch") {
      options.batch = static_cast<std::uint32_t>(parse_u64(a, value(i, a)));
      if (options.batch == 0 || options.batch > 1'000'000) {
        throw UsageError("--batch must be in [1, 1,000,000]");
      }
    } else if (a == "--threads") {
      const std::uint64_t t = parse_u64(a, value(i, a));
      if (t == 0 || t > 1024) throw UsageError("--threads must be in [1, 1024]");
      options.serve.threads = static_cast<std::uint32_t>(t);
    } else if (a == "--seed") {
      options.seed = parse_u64(a, value(i, a));
      options.serve.explorer.seed = options.seed;
    } else if (a == "--objective") {
      const std::string v = value(i, a);
      if (v == "cwm") {
        options.serve.objective = serve::Objective::kCwm;
      } else if (v == "cdcm") {
        options.serve.objective = serve::Objective::kCdcm;
      } else {
        throw UsageError("--objective expects cwm | cdcm, got '" + v + "'");
      }
    } else if (a == "--method") {
      options.serve.explorer.method = parse_method(value(i, a));
      if (options.serve.explorer.method == core::SearchMethod::kExhaustive) {
        throw UsageError(
            "serve-bench --method es is not supported: exhaustive search "
            "ignores warm starts");
      }
    } else if (a == "--ckpt-interval") {
      options.serve.explorer.cdcm_checkpoints = true;
      const std::uint64_t n = parse_u64(a, value(i, a));
      if (n > 1'000'000'000) {
        throw UsageError("--ckpt-interval must be at most 1,000,000,000");
      }
      options.serve.explorer.ckpt_interval = static_cast<std::uint32_t>(n);
    } else if (a == "--cache-capacity") {
      options.serve.cache_capacity =
          static_cast<std::size_t>(parse_u64(a, value(i, a)));
      if (options.serve.cache_capacity == 0) {
        throw UsageError("--cache-capacity must be >= 1");
      }
    } else if (a == "--bypass-cache") {
      options.serve.bypass_cache = true;
    } else if (a == "--out") {
      out_path = value(i, a);
    } else if (a == "--csv") {
      csv = true;
    } else {
      throw UsageError("option '" + a +
                       "' is not valid for `nocmap serve-bench`");
    }
  }
  if (options.dup_ratio + options.near_ratio > 1.0) {
    throw UsageError("--dup-ratio + --near-ratio must be at most 1");
  }

  const serve::ServeBenchReport report = serve::run_serve_bench(options);

  Fmt fmt(csv);
  util::TextTable table({"Metric", "Value"});
  table.set_title("nocmap serve-bench — " + report.population + " on " +
                  std::to_string(report.mesh_width) + "x" +
                  std::to_string(report.mesh_height) + ", " +
                  std::to_string(report.requests) + " requests");
  table.add_row({"cold solves", fmt.count(report.cold)});
  table.add_row({"exact hits", fmt.count(report.exact_hits)});
  table.add_row({"batch hits", fmt.count(report.batch_hits)});
  table.add_row({"warm starts", fmt.count(report.warm_starts)});
  table.add_row({"cache hit rate", fmt.percent(report.cache_hit_rate)});
  table.add_row({"warm-start rate", fmt.percent(report.warm_start_rate)});
  table.add_row({"p50 latency (ms)", util::format_fixed(report.p50_ms, 3)});
  table.add_row({"p95 latency (ms)", util::format_fixed(report.p95_ms, 3)});
  table.add_row({"p99 latency (ms)", util::format_fixed(report.p99_ms, 3)});
  table.add_row(
      {"throughput (req/s)", util::format_fixed(report.throughput_rps, 1)});
  table.add_row(
      {"warm-start speedup", util::format_fixed(report.warm_speedup, 2)});
  table.add_row({"results digest", std::to_string(report.results_digest)});
  print_table(table, csv);

  std::ofstream out(out_path);
  if (!out) throw std::runtime_error("cannot write " + out_path);
  out << report.to_json();
  std::cerr << "wrote " << out_path << "\n";
  return 0;
}

/// Prefix bare paths with "file:" so `workloads import apps.tgff` works
/// without spelling the scheme.
std::string as_source_spec(const std::string& arg) {
  if (workload::is_source_spec(arg)) return arg;
  return "file:" + arg;
}

int cmd_workloads_list(const std::string& spec, bool csv) {
  Fmt fmt(csv);
  if (spec.empty()) {
    // The historical listing: paper-example plus the Table-1 suite.
    util::TextTable table(
        {"Name", "NoC", "Cores", "Packets", "Bits", "ES feasible"});
    table.set_title("nocmap workloads — the Table-1 suite");
    {
      graph::Cdcg example = workload::paper_example_cdcg();
      table.add_row({"paper-example", "2 x 2",
                     std::to_string(example.num_cores()),
                     std::to_string(example.num_packets()),
                     fmt.count(example.total_bits()), "yes"});
      table.add_separator();
    }
    for (const workload::SuiteEntry& entry : workload::table1_suite()) {
      table.add_row({entry.name, entry.noc_size_label(),
                     std::to_string(entry.paper_cores),
                     std::to_string(entry.paper_packets),
                     fmt.count(entry.paper_bits),
                     workload::small_enough_for_exhaustive(entry.noc_width,
                                                           entry.noc_height)
                         ? "yes"
                         : "no"});
    }
    print_table(table, csv);
    std::cout << "source: "
              << workload::SuiteSource().provenance() << "\n";
    return 0;
  }
  const std::unique_ptr<workload::WorkloadSource> source = open_source(spec);
  util::TextTable table(
      {"Name", "NoC", "Cores", "Packets", "Bits", "Deps", "ES feasible"});
  table.set_title("nocmap workloads — " + source->name());
  for (std::size_t i = 0; i < source->size(); ++i) {
    const workload::WorkloadApp app = source->app(i);
    table.add_row({app.name, app.noc_size_label(),
                   std::to_string(app.cdcg.num_cores()),
                   std::to_string(app.cdcg.num_packets()),
                   fmt.count(app.cdcg.total_bits()),
                   std::to_string(app.cdcg.num_dependences()),
                   workload::small_enough_for_exhaustive(app.noc_width,
                                                         app.noc_height)
                       ? "yes"
                       : "no"});
  }
  print_table(table, csv);
  std::cout << "source: " << source->provenance() << "\n";
  return 0;
}

int cmd_workloads_export(const std::string& spec, const std::string& out) {
  const std::unique_ptr<workload::WorkloadSource> source = open_source(spec);
  const std::vector<workload::WorkloadApp> apps = source->all();
  if (out.empty()) {
    std::cout << workload::workloads_to_json(apps);
  } else {
    try {
      workload::write_workload_file(out, apps);
    } catch (const std::invalid_argument& e) {
      throw UsageError(e.what());
    }
    std::cerr << "wrote " << out << " (" << apps.size() << " workload"
              << (apps.size() == 1 ? "" : "s") << " from " << source->name()
              << ")\n";
  }
  return 0;
}

int cmd_workloads_validate(const std::string& spec) {
  const std::unique_ptr<workload::WorkloadSource> source = open_source(spec);
  std::cout << "source: " << source->name() << "\n"
            << "provenance: " << source->provenance() << "\n";
  const std::size_t n = source->size();
  for (std::size_t i = 0; i < n; ++i) {
    const workload::WorkloadApp app = source->app(i);
    // Every backend validates on ingest; re-check here so `validate` stays
    // an end-to-end proof even if a backend regresses.
    workload::validate_app(app, source->name(), i + 1);
    std::cout << "workload " << app.name << ": OK (" << app.cdcg.num_cores()
              << " cores, " << app.cdcg.num_packets() << " packets, "
              << app.cdcg.total_bits() << " bits, "
              << app.cdcg.num_dependences() << " deps, board "
              << app.noc_size_label() << ")\n";
  }
  std::cout << n << " workload" << (n == 1 ? "" : "s") << " OK\n";
  return 0;
}

int cmd_workloads(int argc, char** argv) {
  std::string verb = "list";
  std::vector<std::string> positional;
  std::string spec;
  std::string out;
  bool csv = false;
  int i = 2;
  if (i < argc && argv[i][0] != '-') verb = argv[i++];
  auto value = [&](const std::string& flag) -> std::string {
    if (i + 1 >= argc) throw UsageError(flag + " expects a value");
    return argv[++i];
  };
  for (; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      std::cout << kWorkloadsUsage;
      return 0;
    } else if (a == "--csv") {
      csv = true;
    } else if (a == "--workload") {
      spec = value(a);
    } else if (a == "--out") {
      out = value(a);
    } else if (!a.empty() && a[0] == '-') {
      throw UsageError("option '" + a +
                       "' is not valid for `nocmap workloads`");
    } else {
      positional.push_back(a);
    }
  }
  if (positional.size() > 1) {
    throw UsageError("`nocmap workloads " + verb +
                     "` takes at most one positional argument");
  }
  if (!positional.empty()) {
    if (!spec.empty()) {
      throw UsageError("give the source either positionally or with "
                       "--workload, not both");
    }
    spec = positional.front();
  }

  if (verb == "list") {
    return cmd_workloads_list(spec.empty() ? "" : as_source_spec(spec), csv);
  }
  if (verb == "import") {
    if (spec.empty()) {
      throw UsageError("`nocmap workloads import` needs a file, e.g. "
                       "`nocmap workloads import apps.tgff --out apps.json`");
    }
    return cmd_workloads_export(as_source_spec(spec), out);
  }
  if (verb == "export") {
    if (spec.empty()) {
      throw UsageError("`nocmap workloads export` needs a source, e.g. "
                       "`nocmap workloads export suite --out suite.json`");
    }
    return cmd_workloads_export(as_source_spec(spec), out);
  }
  if (verb == "gen") {
    if (spec.empty()) {
      throw UsageError("`nocmap workloads gen` needs a population spec, "
                       "e.g. `nocmap workloads gen apps=200,seed=7`");
    }
    const std::string gen_spec =
        spec.rfind("gen:", 0) == 0 ? spec : "gen:" + spec;
    return cmd_workloads_export(gen_spec, out);
  }
  if (verb == "validate") {
    if (spec.empty()) {
      throw UsageError("`nocmap workloads validate` needs a source or file");
    }
    return cmd_workloads_validate(as_source_spec(spec));
  }
  throw UsageError("unknown `nocmap workloads` verb '" + verb +
                   "' (expected list, import, export, gen or validate)");
}

/// The historical single-(topology, routing) seed sweep; kept as its own
/// path so the mesh/XY output stays byte-identical to the pre-topology era.
int cmd_sweep_seeds(const RunOptions& opts) {
  BoundWorkload wl = resolve_workload(opts);
  Fmt fmt(opts.csv);

  util::TextTable table({"Seed", "Method", fmt.head("CWM Texec", "ns"),
                         fmt.head("CDCM Texec", "ns"), fmt.head("ETR", "pct"),
                         fmt.head("ECS", "pct")});
  table.set_title("nocmap sweep — " + wl.name + " on " + wl.topo->label() +
                  ", " + wl.tech.name + ", " +
                  std::to_string(opts.num_seeds) + " seeds");

  double etr_sum = 0.0, etr_min = 0.0, etr_max = 0.0;
  double ecs_sum = 0.0;
  for (std::uint64_t k = 0; k < opts.num_seeds; ++k) {
    RunOptions run = opts;
    run.seed = opts.seed + k;
    core::Explorer explorer(wl.cdcg, *wl.topo, explorer_options(run, wl.tech));
    core::Comparison cmp = explorer.compare();
    double etr = cmp.execution_time_reduction();
    double ecs = cmp.energy_saving();
    etr_sum += etr;
    ecs_sum += ecs;
    if (k == 0 || etr < etr_min) etr_min = etr;
    if (k == 0 || etr > etr_max) etr_max = etr;
    table.add_row({std::to_string(run.seed),
                   cmp.cdcm.method,
                   fmt.time(cmp.cwm.sim.texec_ns),
                   fmt.time(cmp.cdcm.sim.texec_ns), fmt.percent(etr),
                   fmt.percent(ecs)});
  }
  print_table(table, opts.csv);

  double n = static_cast<double>(opts.num_seeds);
  util::TextTable summary({"Metric", fmt.head("Value", "pct")});
  summary.add_row({"mean ETR", fmt.percent(etr_sum / n)});
  summary.add_row({"min ETR", fmt.percent(etr_min)});
  summary.add_row({"max ETR", fmt.percent(etr_max)});
  summary.add_row({"mean ECS", fmt.percent(ecs_sum / n)});
  print_table(summary, opts.csv);
  return 0;
}

int cmd_sweep(const RunOptions& opts) {
  // Any multi-application source ("suite", "file:apps.json", "gen:...")
  // sweeps every application it holds; a '#' fragment pins one application
  // and keeps the historical single-workload semantics.
  const auto [sweep_spec, sweep_fragment] = split_fragment(opts.workload);
  const bool multi_mode =
      workload::is_source_spec(sweep_spec) && sweep_fragment.empty();
  if (opts.noc_filter && !multi_mode) {
    throw UsageError(
        "sweep --noc filters a multi-application --workload source "
        "(suite, file:PATH or gen:SPEC)");
  }
  if (!multi_mode && opts.topologies.size() == 1 &&
      opts.routings.size() == 1) {
    return cmd_sweep_seeds(opts);
  }

  // --- Cross-topology sweep: (topology x routing x application x seed) ------
  // One workload entry (possibly a whole multi-application source), each
  // application on its own grid size rebuilt per topology kind.
  struct SweepApp {
    std::string name;
    const graph::Cdcg* cdcg = nullptr;
    std::uint32_t width = 0;
    std::uint32_t height = 0;
  };
  std::vector<workload::WorkloadApp> src_apps;
  std::optional<BoundWorkload> single;
  std::vector<SweepApp> apps;
  std::string title = opts.workload;
  energy::Technology tech =
      opts.tech ? *opts.tech : energy::technology_0_07u();
  if (multi_mode) {
    const std::unique_ptr<workload::WorkloadSource> source =
        open_source(sweep_spec);
    title = source->name();
    std::cerr << "workload source: " << source->provenance() << "\n";
    for (std::size_t i = 0; i < source->size(); ++i) {
      workload::WorkloadApp app = source->app(i);
      if (opts.noc_filter && app.noc_size_label() != *opts.noc_filter) {
        continue;
      }
      src_apps.push_back(std::move(app));
    }
    if (src_apps.empty()) {
      throw UsageError("source " + source->name() +
                       " has no workloads on NoC size " +
                       (opts.noc_filter ? *opts.noc_filter : "?"));
    }
    for (const workload::WorkloadApp& a : src_apps) {
      apps.push_back(SweepApp{a.name, &a.cdcg, a.noc_width, a.noc_height});
    }
  } else {
    single = resolve_workload(opts);
    tech = single->tech;
    title = single->name;
    apps.push_back(SweepApp{single->name, &single->cdcg,
                            single->topo->width(), single->topo->height()});
  }

  // A full source already multiplies out to many rows; default to a single
  // seed there unless the user asked for more.
  const std::uint64_t num_seeds =
      (multi_mode && !opts.seeds_set) ? 1 : opts.num_seeds;

  struct SweepRow {
    std::string topology;
    noc::RoutingAlgorithm routing{};
    std::size_t app = 0;
    std::uint64_t seed = 0;
    std::optional<core::Comparison> cmp;
  };
  std::vector<SweepRow> rows;
  for (const std::string& topology : opts.topologies) {
    for (const noc::RoutingAlgorithm routing : opts.routings) {
      for (std::size_t app = 0; app < apps.size(); ++app) {
        for (std::uint64_t k = 0; k < num_seeds; ++k) {
          rows.push_back(
              SweepRow{topology, routing, app, opts.seed + k, std::nullopt});
        }
      }
    }
  }

  // Like bench: spend the worker budget at the row level (each row derives
  // its randomness from its own seed, so the output is thread-invariant).
  RunOptions per_row = opts;
  if (rows.size() > 1) per_row.threads = 1;
  parallel_for_index(opts.threads, rows.size(), [&](std::size_t i) {
    SweepRow& row = rows[i];
    const SweepApp& app = apps[row.app];
    const std::unique_ptr<noc::Topology> topo = noc::make_topology(
        row.topology, app.width, app.height, topology_options(opts));
    RunOptions run = per_row;
    run.seed = row.seed;
    run.routings = {row.routing};
    core::Explorer explorer(*app.cdcg, *topo, explorer_options(run, tech));
    row.cmp = explorer.compare();
  });

  Fmt fmt(opts.csv);
  util::TextTable table({"Topology", "Routing", "Application", "Seed",
                         "Method", fmt.head("CWM Texec", "ns"),
                         fmt.head("CDCM Texec", "ns"), fmt.head("ETR", "pct"),
                         fmt.head("ECS", "pct")});
  table.set_title("nocmap sweep — " + title + ", " + tech.name);
  std::string current_combo;
  for (const SweepRow& row : rows) {
    const std::string combo =
        row.topology + "/" + noc::routing_algorithm_name(row.routing);
    if (!current_combo.empty() && combo != current_combo) {
      table.add_separator();
    }
    current_combo = combo;
    const core::Comparison& cmp = *row.cmp;
    table.add_row({row.topology, noc::routing_algorithm_name(row.routing),
                   apps[row.app].name, std::to_string(row.seed),
                   cmp.cdcm.method,
                   fmt.time(cmp.cwm.sim.texec_ns),
                   fmt.time(cmp.cdcm.sim.texec_ns),
                   fmt.percent(cmp.execution_time_reduction()),
                   fmt.percent(cmp.energy_saving())});
  }
  print_table(table, opts.csv);

  // Per-(topology, routing) aggregates, in row order.
  util::TextTable summary({"Topology", "Routing", "Rows",
                           fmt.head("mean ETR", "pct"),
                           fmt.head("mean ECS", "pct")});
  for (const std::string& topology : opts.topologies) {
    for (const noc::RoutingAlgorithm routing : opts.routings) {
      double etr_sum = 0.0, ecs_sum = 0.0;
      std::uint64_t n = 0;
      for (const SweepRow& row : rows) {
        if (row.topology != topology || row.routing != routing) continue;
        etr_sum += row.cmp->execution_time_reduction();
        ecs_sum += row.cmp->energy_saving();
        ++n;
      }
      summary.add_row({topology, noc::routing_algorithm_name(routing),
                       std::to_string(n),
                       fmt.percent(etr_sum / static_cast<double>(n)),
                       fmt.percent(ecs_sum / static_cast<double>(n))});
    }
  }
  print_table(summary, opts.csv);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << kTopUsage;
    return 2;
  }
  std::string sub = argv[1];
  try {
    if (sub == "-h" || sub == "--help" || sub == "help") {
      std::cout << kTopUsage;
      return 0;
    }
    if (sub == "--version") {
      std::cout << "nocmap 0.1.0 (Marcon et al., DATE 2005 reproduction)\n";
      return 0;
    }
    const std::vector<std::string> explore_flags = {
        "--workload", "--mesh",          "--tech",  "--method",  "--search",
        "--bnb-nodes", "--routing",      "--time-budget",
        "--topology", "--express-interval",
        "--seed",     "--no-seed-cdcm",  "--cores", "--packets", "--bits",
        "--threads",  "--chains",        "--cost",  "--hybrid-cadence",
        "--ckpt-interval",
        "--backend",  "--buffer-depth",  "--flow-control", "--switching"};
    if (sub == "explore") {
      std::vector<std::string> flags = explore_flags;
      flags.push_back("--seed-mapping");
      return cmd_explore(parse_run_options(argc, argv, kExploreUsage, flags));
    }
    if (sub == "serve-bench") {
      return cmd_serve_bench(argc, argv);
    }
    if (sub == "bench") {
      return cmd_bench(parse_run_options(
          argc, argv, kBenchUsage,
          {"--noc", "--workload", "--tech", "--method", "--search",
           "--bnb-nodes", "--routing", "--topology",
           "--express-interval", "--seed", "--threads", "--chains", "--perf",
           "--scale", "--time-budget",
           "--sizes", "--out", "--cost", "--hybrid-cadence", "--ckpt-interval",
           "--backend", "--buffer-depth", "--flow-control", "--switching"}));
    }
    if (sub == "workloads") {
      return cmd_workloads(argc, argv);
    }
    if (sub == "sweep") {
      std::vector<std::string> sweep_flags = explore_flags;
      sweep_flags.push_back("--seeds");
      sweep_flags.push_back("--noc");
      return cmd_sweep(
          parse_run_options(argc, argv, kSweepUsage, sweep_flags));
    }
    throw UsageError("unknown subcommand '" + sub + "'");
  } catch (const UsageError& e) {
    std::cerr << "nocmap: " << e.what() << "\n\n"
              << "Run `nocmap --help` for usage.\n";
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "nocmap: error: " << e.what() << "\n";
    return 1;
  }
}
