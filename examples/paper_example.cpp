// Reproduces the paper's worked example end to end (Figures 1-5):
// the 4-core / 6-packet application on a 2x2 mesh, both mappings, CWM and
// CDCM evaluations, the per-resource occupancy annotations and the packet
// timing diagrams.
//
//   ./paper_example

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/nocmap.hpp"

int main() {
  using namespace nocmap;

  const graph::Cdcg cdcg = workload::paper_example_cdcg();
  const noc::Mesh mesh = workload::paper_example_mesh();
  const energy::Technology tech = energy::example_technology();
  const graph::Cwg cwg = cdcg.to_cwg();

  std::cout << "=== Figure 1: the application ===\n";
  std::cout << "CWG (volumes): total " << cwg.total_volume() << " bits\n";
  for (const auto& e : cwg.edges()) {
    std::cout << "  " << cwg.name(e.src) << " -> " << cwg.name(e.dst) << " : "
              << e.bits << " bits\n";
  }
  std::cout << "CDCG: " << cdcg.num_packets() << " packets, "
            << cdcg.num_dependences() << " dependences\n\n";

  const struct {
    const char* label;
    mapping::Mapping mapping;
  } mappings[] = {
      {"(a) CRG1 = {t1:B, t2:A, t3:F, t4:E}", workload::paper_mapping_a()},
      {"(b) CRG2 = {t1:B, t2:E, t3:F, t4:A}", workload::paper_mapping_b()},
  };

  std::cout << "=== Figure 2: CWM evaluation (Equation 3) ===\n";
  for (const auto& m : mappings) {
    std::cout << "mapping " << m.label << " -> EDyNoC = "
              << util::format_energy_j(
                     mapping::cwm_dynamic_energy(cwg, mesh, m.mapping, tech))
              << "\n";
  }
  std::cout << "(CWM cannot distinguish the two mappings.)\n\n";

  for (const auto& m : mappings) {
    const auto result = sim::simulate(cdcg, mesh, m.mapping, tech);
    std::cout << "=== Figure 3" << (m.label[1] == 'a' ? "(a)" : "(b)")
              << ": CDCM evaluation of mapping " << m.label << " ===\n";
    std::cout << "texec = " << result.texec_ns << " ns, ENoC = "
              << util::format_energy_j(result.energy.total_j())
              << " (dynamic "
              << util::format_energy_j(result.energy.dynamic_j) << " + static "
              << util::format_energy_j(result.energy.static_j) << ")\n";
    std::cout << "contended packets: " << result.num_contended_packets
              << ", total contention: " << result.total_contention_ns
              << " ns\n\n";
    std::cout << "Resource occupancy annotations ('*' = contended):\n"
              << sim::render_annotations(result, cdcg, mesh) << "\n";
    std::cout << "Timing diagram (Figure " << (m.label[1] == 'a' ? '4' : '5')
              << "):\n"
              << sim::render_timeline(result, cdcg, tech, 100) << "\n";
  }

  std::cout << "=== Section 4.1 summary ===\n";
  const auto a = sim::simulate(cdcg, mesh, mappings[0].mapping, tech);
  const auto b = sim::simulate(cdcg, mesh, mappings[1].mapping, tech);
  std::cout << "Execution time reduction (a -> b): "
            << util::format_percent((a.texec_ns - b.texec_ns) / b.texec_ns)
            << "  [paper: 11.1 %]\n";
  std::cout << "Energy: " << util::format_energy_j(a.energy.total_j())
            << " vs " << util::format_energy_j(b.energy.total_j())
            << "  [paper: 400 pJ vs 399 pJ]\n";
  return 0;
}
