// Building your own workloads: the four embedded applications from the
// paper, a custom random benchmark, DOT export for visualization and CSV
// export of a mapping study.
//
//   ./custom_workload          prints summaries and a CSV block
//   ./custom_workload --dot    prints the Graphviz DOT of the FFT CDCG

#include <cstring>
#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/nocmap.hpp"

int main(int argc, char** argv) {
  using namespace nocmap;

  if (argc > 1 && std::strcmp(argv[1], "--dot") == 0) {
    const graph::Cdcg fft = workload::fft8_app(workload::FftParams{});
    std::cout << fft.to_dot();
    return 0;
  }

  // --- The paper's embedded applications -------------------------------------
  util::TextTable t({"application", "cores", "packets", "bits", "deps"});
  t.set_title("Embedded applications (paper Table 1 rows)");
  const struct {
    const char* name;
    graph::Cdcg cdcg;
  } apps[] = {
      {"romberg-v1", workload::romberg_app(workload::RombergParams{})},
      {"fft-v1", workload::fft8_app(workload::FftParams{})},
      {"objrec-v1",
       workload::object_recognition_app(workload::ObjectRecognitionParams{})},
      {"imgenc-v1", workload::image_encoder_app(workload::ImageEncoderParams{})},
  };
  for (const auto& app : apps) {
    t.add_row({app.name, std::to_string(app.cdcg.num_cores()),
               std::to_string(app.cdcg.num_packets()),
               util::format_grouped(app.cdcg.total_bits()),
               std::to_string(app.cdcg.num_dependences())});
  }
  std::cout << t << "\n";

  // --- A custom random benchmark ----------------------------------------------
  workload::RandomCdcgParams params;
  params.num_cores = 9;
  params.num_packets = 40;
  params.total_bits = 80000;
  params.hotspot_fraction = 0.5;  // Memory-controller-ish traffic.
  util::Rng rng(2025);
  const graph::Cdcg custom = workload::generate_random_cdcg(params, rng);
  std::cout << "Custom benchmark: " << custom.num_cores() << " cores, "
            << custom.num_packets() << " packets, " << custom.total_bits()
            << " bits\n\n";

  // --- Study: how much do 20 random mappings spread? -------------------------
  // Exported as CSV so it can be plotted directly.
  const noc::Mesh mesh(3, 3);
  const energy::Technology tech = energy::technology_0_07u();
  const mapping::CdcmCost cost(custom, mesh, tech);
  util::TextTable csv({"sample", "texec_ns", "energy_pj", "contention_ns"});
  util::Rng sample_rng(7);
  for (int i = 0; i < 20; ++i) {
    const auto m = mapping::Mapping::random(mesh, custom.num_cores(),
                                            sample_rng);
    const auto sim = cost.evaluate(m);
    csv.add_row({std::to_string(i), util::format_fixed(sim.texec_ns, 1),
                 util::format_fixed(sim.energy.total_j() * 1e12, 2),
                 util::format_fixed(sim.total_contention_ns, 1)});
  }
  std::cout << "Random-mapping spread on 3x3 (CSV):\n" << csv.to_csv() << "\n";

  // --- And what search buys over the best random draw -------------------------
  util::Rng search_rng(7);
  const auto sa = search::anneal(cost, mesh, search_rng);
  const auto best_sim = cost.evaluate(sa.best);
  std::cout << "SA-optimized mapping: texec = "
            << util::format_time_ns(best_sim.texec_ns) << ", energy = "
            << util::format_energy_j(best_sim.energy.total_j()) << " ("
            << sa.evaluations << " evaluations)\n";
  std::cout << "Mapping:\n" << sa.best.to_grid_string() << "\n";
  return 0;
}
