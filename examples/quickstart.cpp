// Quickstart: describe a small application as a CDCG, explore mappings with
// both models, and print what CDCM buys you.
//
//   ./quickstart
//
// This is the 60-second tour of the public API; see paper_example.cpp for
// the paper's worked figures and design_space.cpp / custom_workload.cpp for
// larger studies.

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/nocmap.hpp"

int main() {
  using namespace nocmap;

  // --- 1. Describe the application -----------------------------------------
  // A tiny producer/worker/consumer system: "sensor" fans work out to two
  // "dsp" cores, which feed an "actuator". Packets carry (source, dest,
  // computation cycles before send, payload bits).
  graph::Cdcg app;
  const auto sensor = app.add_core("sensor");
  const auto dsp0 = app.add_core("dsp0");
  const auto dsp1 = app.add_core("dsp1");
  const auto actuator = app.add_core("actuator");

  const auto job0 = app.add_packet(sensor, dsp0, 4, 256);
  const auto job1 = app.add_packet(sensor, dsp1, 4, 256);
  const auto res0 = app.add_packet(dsp0, actuator, 24, 64);
  const auto res1 = app.add_packet(dsp1, actuator, 24, 64);
  const auto ack = app.add_packet(actuator, sensor, 8, 16);
  app.add_dependence(job0, res0);  // dsp0 computes after its job arrives.
  app.add_dependence(job1, res1);
  app.add_dependence(res0, ack);  // The actuator waits for both results.
  app.add_dependence(res1, ack);
  app.validate();

  // --- 2. Pick a platform ---------------------------------------------------
  const noc::Mesh mesh(2, 2);
  core::ExplorerOptions options;
  options.tech = energy::technology_0_07u();  // Leakage matters here.
  options.seed = 42;

  // --- 3. Explore -----------------------------------------------------------
  const core::Explorer explorer(app, mesh, options);
  const core::Comparison cmp = explorer.compare();

  // --- 4. Report ------------------------------------------------------------
  std::cout << "Application: 4 cores, " << app.num_packets() << " packets, "
            << app.total_bits() << " bits total\n";
  std::cout << "Mesh: 2x2, technology: " << options.tech.name << "\n\n";

  for (const core::ModelOutcome* out : {&cmp.cwm, &cmp.cdcm}) {
    std::cout << out->model << " best mapping "
              << (out->used_exhaustive ? "(exhaustive search)" : "(SA)")
              << ":\n"
              << out->mapping.to_grid_string() << "\n"
              << "  texec  = " << util::format_time_ns(out->sim.texec_ns)
              << "\n"
              << "  energy = "
              << util::format_energy_j(out->sim.energy.total_j())
              << " (dynamic "
              << util::format_energy_j(out->sim.energy.dynamic_j)
              << " + static "
              << util::format_energy_j(out->sim.energy.static_j) << ")\n"
              << "  contended packets: " << out->sim.num_contended_packets
              << "\n\n";
  }

  std::cout << "CDCM vs CWM: execution time reduction = "
            << util::format_percent(cmp.execution_time_reduction())
            << ", energy saving = "
            << util::format_percent(cmp.energy_saving()) << "\n";
  return 0;
}
