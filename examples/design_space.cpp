// Design-space exploration: take one application and sweep mesh sizes,
// routing algorithms and technologies, reporting how the CWM/CDCM gap
// changes. This is the kind of what-if study the FRW framework is for.
//
//   ./design_space [seed]

#include <cstdlib>
#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/nocmap.hpp"

int main(int argc, char** argv) {
  using namespace nocmap;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1;

  // A moderately parallel 12-core application.
  workload::RandomCdcgParams params;
  params.num_cores = 12;
  params.num_packets = 72;
  params.total_bits = 250000;
  params.parallelism = 5.0;
  params.hotspot_fraction = 0.35;
  util::Rng rng(seed);
  const graph::Cdcg app = workload::generate_random_cdcg(params, rng);

  std::cout << "Application: " << app.num_cores() << " cores, "
            << app.num_packets() << " packets, " << app.total_bits()
            << " bits (seed " << seed << ")\n\n";

  // --- Sweep 1: mesh size ----------------------------------------------------
  {
    util::TextTable t({"mesh", "tiles", "CWM texec", "CDCM texec", "ETR",
                       "ECS (0.07u)"});
    t.set_title("Mesh-size sweep (XY routing, 0.07u)");
    const std::pair<std::uint32_t, std::uint32_t> meshes[] = {
        {4, 3}, {4, 4}, {5, 4}, {6, 5}};
    for (const auto& [w, h] : meshes) {
      const noc::Mesh mesh(w, h);
      core::ExplorerOptions options;
      options.tech = energy::technology_0_07u();
      options.seed = seed;
      const core::Explorer explorer(app, mesh, options);
      const core::Comparison cmp = explorer.compare();
      t.add_row({std::to_string(w) + " x " + std::to_string(h),
                 std::to_string(mesh.num_tiles()),
                 util::format_time_ns(cmp.cwm.sim.texec_ns),
                 util::format_time_ns(cmp.cdcm.sim.texec_ns),
                 util::format_percent(cmp.execution_time_reduction()),
                 util::format_percent(cmp.energy_saving())});
    }
    std::cout << t << "\n";
  }

  // --- Sweep 2: routing algorithm ---------------------------------------------
  {
    util::TextTable t({"routing", "CDCM texec", "CDCM energy", "contention"});
    t.set_title("Routing sweep on 4x4 (CDCM-optimized mapping per router)");
    for (const auto algo :
         {noc::RoutingAlgorithm::kXY, noc::RoutingAlgorithm::kYX,
          noc::RoutingAlgorithm::kWestFirst}) {
      const noc::Mesh mesh(4, 4);
      core::ExplorerOptions options;
      options.tech = energy::technology_0_07u();
      options.routing = algo;
      options.seed = seed;
      const core::Explorer explorer(app, mesh, options);
      const core::ModelOutcome out = explorer.optimize_cdcm();
      t.add_row({noc::routing_algorithm_name(algo),
                 util::format_time_ns(out.sim.texec_ns),
                 util::format_energy_j(out.sim.energy.total_j()),
                 util::format_time_ns(out.sim.total_contention_ns)});
    }
    std::cout << t << "\n";
  }

  // --- Sweep 3: technology -----------------------------------------------------
  {
    util::TextTable t({"technology", "static share (CWM map)", "ETR", "ECS"});
    t.set_title("Technology sweep on 4x4");
    for (const auto& tech :
         {energy::technology_0_35u(), energy::technology_0_07u()}) {
      const noc::Mesh mesh(4, 4);
      core::ExplorerOptions options;
      options.tech = tech;
      options.seed = seed;
      const core::Explorer explorer(app, mesh, options);
      const core::Comparison cmp = explorer.compare();
      const double share =
          cmp.cwm.sim.energy.static_j / cmp.cwm.sim.energy.total_j();
      t.add_row({tech.name, util::format_percent(share),
                 util::format_percent(cmp.execution_time_reduction()),
                 util::format_percent(cmp.energy_saving())});
    }
    std::cout << t << "\n";
  }

  std::cout << "Reading: ETR is mapping-timing leverage (CWM is blind to "
               "contention);\nECS tracks ETR only when leakage is a large "
               "share of NoC energy (0.07u).\n";
  return 0;
}
