// Ablation A4 — router buffer capacity. The paper's example assumes
// unbounded input buffers (a blocked worm is fully absorbed); real routers
// have finite buffers and blocked worms back-pressure their upstream link.
// This bench evaluates the same CDCM-optimized mappings under decreasing
// buffer sizes.
//
//   ./bench_buffer_ablation

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/core/explorer.hpp"
#include "nocmap/sim/schedule.hpp"
#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/suite.hpp"

int main() {
  using namespace nocmap;
  const energy::Technology tech = energy::technology_0_07u();

  util::TextTable t({"application", "buffer (flits)", "texec", "contention",
                     "contended pkts", "energy"});
  t.set_title("Buffer-capacity ablation (mapping fixed to the CDCM optimum "
              "found under unbounded buffers)");

  const char* picks[] = {"objrec-v2", "imgenc-v2", "random-6"};
  for (const workload::SuiteEntry& e : workload::table1_suite()) {
    bool selected = false;
    for (const char* p : picks) selected |= (e.name == p);
    if (!selected) continue;

    const noc::Mesh mesh(e.noc_width, e.noc_height);
    std::cerr << "[buffers] " << e.name << " ..." << std::endl;
    core::ExplorerOptions options;
    options.tech = tech;
    options.seed = 0xB0F;
    options.es_auto_threshold = 50'000;
    const core::Explorer explorer(e.cdcg, mesh, options);
    const core::ModelOutcome best = explorer.optimize_cdcm();

    for (const std::uint32_t buffer : {0u, 64u, 8u, 2u}) {
      sim::SimOptions sim_options;
      sim_options.buffer_flits = buffer;
      const auto result =
          sim::simulate(e.cdcg, mesh, best.mapping, tech, sim_options);
      t.add_row({e.name, buffer == 0 ? "unbounded" : std::to_string(buffer),
                 util::format_time_ns(result.texec_ns),
                 util::format_time_ns(result.total_contention_ns),
                 std::to_string(result.num_contended_packets),
                 util::format_energy_j(result.energy.total_j())});
    }
    t.add_separator();
  }

  std::cout << t;
  std::cout << "\nExpectation: execution time and contention are "
               "monotonically non-decreasing\nas buffers shrink (first-order "
               "back-pressure model; see DESIGN.md).\n";
  return 0;
}
