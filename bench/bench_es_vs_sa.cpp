// Ablation A1 — Section 5's claim "for small NoC sizes (up to 3x4 or 2x5),
// both ES and SA methods reached the same results": run exhaustive search
// and simulated annealing on every small suite row under both objectives and
// report whether the best costs agree.
//
//   ./bench_es_vs_sa

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/mapping/cost.hpp"
#include "nocmap/search/exhaustive.hpp"
#include "nocmap/search/simulated_annealing.hpp"
#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/suite.hpp"

int main() {
  using namespace nocmap;
  const energy::Technology tech = energy::technology_0_07u();

  util::TextTable t({"application", "NoC", "model", "ES cost", "SA cost",
                     "agree", "ES evals", "SA evals"});
  t.set_title("ES vs SA on small NoCs (paper: identical results)");

  int total = 0, agreements = 0;
  for (const workload::SuiteEntry& e : workload::table1_suite()) {
    if (!workload::small_enough_for_exhaustive(e.noc_width, e.noc_height)) {
      continue;
    }
    const noc::Mesh mesh(e.noc_width, e.noc_height);
    // CDCM evaluations are costly; skip rows whose pruned placement space
    // would exceed the budget (they are covered under the cheap CWM
    // objective instead).
    const std::uint64_t group = mesh.width() == mesh.height() ? 8 : 4;
    const std::uint64_t pruned =
        search::placement_count(mesh.num_tiles(),
                                static_cast<std::uint32_t>(
                                    e.cdcg.num_cores())) /
        group;

    const graph::Cwg cwg = e.cdcg.to_cwg();
    const mapping::CwmCost cwm(cwg, mesh, tech);
    const mapping::CdcmCost cdcm(e.cdcg, mesh, tech);
    const std::vector<const mapping::CostFunction*> costs =
        pruned <= 150'000
            ? std::vector<const mapping::CostFunction*>{&cwm, &cdcm}
            : std::vector<const mapping::CostFunction*>{&cwm};

    for (const mapping::CostFunction* cost : costs) {
      std::cerr << "[es-vs-sa] " << e.name << " / " << cost->name() << " ..."
                << std::endl;
      // Cap the enumeration so a single 12-tile row cannot stall the
      // harness; capped rows are flagged (the optimum may then be missed by
      // ES itself, so agreement is only *expected* on exhausted rows).
      search::EsOptions es_options;
      es_options.max_evaluations = 3'000'000;
      const search::SearchResult es =
          search::exhaustive_search(*cost, mesh, es_options);
      util::Rng rng(0xE5E5);
      const search::SearchResult sa = search::anneal(*cost, mesh, rng);
      const bool agree = sa.best_cost <= es.best_cost * (1.0 + 1e-12);
      if (es.exhausted) {
        ++total;
        agreements += agree;
      }
      t.add_row({e.name, e.noc_size_label(),
                 std::string(cost->name()) + (es.exhausted ? "" : " (capped)"),
                 util::format_energy_j(es.best_cost),
                 util::format_energy_j(sa.best_cost), agree ? "yes" : "NO",
                 std::to_string(es.evaluations),
                 std::to_string(sa.evaluations)});
    }
  }

  std::cout << t;
  std::cout << "\n" << agreements << "/" << total
            << " runs: SA found the exhaustive optimum.\n";
  return 0;
}
