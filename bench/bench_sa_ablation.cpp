// Ablation A3 — simulated-annealing schedule sensitivity: cooling factor and
// moves-per-temperature, averaged over seeds, on a mid-size instance. Shows
// the default schedule sits on the quality/cost plateau.
//
//   ./bench_sa_ablation

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/mapping/cost.hpp"
#include "nocmap/search/simulated_annealing.hpp"
#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/random_cdcg.hpp"

int main() {
  using namespace nocmap;

  workload::RandomCdcgParams params;
  params.num_cores = 14;
  params.num_packets = 80;
  params.total_bits = 300000;
  params.parallelism = 5.0;
  util::Rng gen(0x5AAB);
  const graph::Cdcg cdcg = workload::generate_random_cdcg(params, gen);
  const noc::Mesh mesh(4, 4);
  const energy::Technology tech = energy::technology_0_07u();
  const mapping::CdcmCost cost(cdcg, mesh, tech);

  util::TextTable t({"cooling", "moves/tile", "avg best (pJ)", "avg evals",
                     "vs default"});
  t.set_title("SA schedule ablation (14 cores on 4x4, CDCM objective, "
              "5 seeds each)");

  constexpr int kSeeds = 5;
  const double coolings[] = {0.80, 0.90, 0.95, 0.99};
  const std::uint32_t moves[] = {5, 20, 50};

  // Reference: default schedule.
  double default_cost = 0;
  {
    for (int s = 0; s < kSeeds; ++s) {
      util::Rng rng(100 + s);
      default_cost += search::anneal(cost, mesh, rng).best_cost / kSeeds;
    }
  }

  for (const double cooling : coolings) {
    for (const std::uint32_t mpt : moves) {
      std::cerr << "[sa-ablation] cooling " << cooling << " moves " << mpt
                << " ..." << std::endl;
      search::SaOptions options;
      options.cooling = cooling;
      options.moves_per_tile = mpt;
      double sum_cost = 0;
      double sum_evals = 0;
      for (int s = 0; s < kSeeds; ++s) {
        util::Rng rng(100 + s);
        const search::SearchResult r = search::anneal(cost, mesh, rng, options);
        sum_cost += r.best_cost / kSeeds;
        sum_evals += static_cast<double>(r.evaluations) / kSeeds;
      }
      t.add_row({util::format_fixed(cooling, 2), std::to_string(mpt),
                 util::format_fixed(sum_cost * 1e12, 2),
                 util::format_fixed(sum_evals, 0),
                 util::format_percent(sum_cost / default_cost - 1.0, 2)});
    }
    t.add_separator();
  }

  std::cout << t;
  std::cout << "\nDefault schedule (cooling 0.95, 20 moves/tile) average: "
            << util::format_energy_j(default_cost) << "\n";
  return 0;
}
