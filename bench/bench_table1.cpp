// Regenerates Table 1: "Summary of NoC/application features" — the 18-app
// suite statistics, printed next to the paper's values. All rows must match
// exactly except the documented 14-core row (DESIGN.md substitution note).
//
//   ./bench_table1 [--csv]

#include <cstring>
#include <iostream>

#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/suite.hpp"

int main(int argc, char** argv) {
  using namespace nocmap;
  const bool csv = argc > 1 && std::strcmp(argv[1], "--csv") == 0;

  util::TextTable t({"NoC size", "application", "cores (paper)",
                     "packets (paper)", "total bits (paper)", "match"});
  t.set_title(
      "Table 1 - Summary of NoC/application features (built vs paper)");

  std::string previous_size;
  int mismatches = 0;
  for (const workload::SuiteEntry& e : workload::table1_suite()) {
    if (!previous_size.empty() && e.noc_size_label() != previous_size) {
      t.add_separator();
    }
    previous_size = e.noc_size_label();

    const bool cores_match = e.cdcg.num_cores() == e.paper_cores;
    const bool packets_match = e.cdcg.num_packets() == e.paper_packets;
    const bool bits_match = e.cdcg.total_bits() == e.paper_bits;
    const bool all = cores_match && packets_match && bits_match;
    if (!all) ++mismatches;

    auto cell = [](std::uint64_t built, std::uint64_t paper) {
      std::string s = std::to_string(built);
      s += " (" + std::to_string(paper) + ")";
      return s;
    };
    t.add_row({e.noc_size_label(), e.name,
               cell(e.cdcg.num_cores(), e.paper_cores),
               cell(e.cdcg.num_packets(), e.paper_packets),
               util::format_grouped(e.cdcg.total_bits()) + " (" +
                   util::format_grouped(e.paper_bits) + ")",
               all ? "yes" : "cores differ (see DESIGN.md)"});
  }

  std::cout << (csv ? t.to_csv() : t.to_string());
  std::cout << "\n" << (18 - mismatches)
            << "/18 rows match Table 1 exactly; " << mismatches
            << " documented deviation(s) (the 14-cores-on-12-tiles row).\n";
  return 0;
}
