// Section-5 CPU-time claim: "the computational complexity of the CWM
// algorithm is proportional to the number of communications between cores
// (NCC) and that of CDCM to the number of dependences and packets (NDP); the
// increase in CPU time with the NDP/NCC ratio is approximately linear with a
// small slope; the worst case for CDCM took only 23% more CPU time".
//
// google-benchmark microbenchmarks of one cost evaluation under each model,
// swept over suite applications and over a synthetic NDP/NCC ladder. Each
// benchmark reports the instance's NCC / NDP as counters so the ratio-vs-
// slowdown trend can be read off directly.
//
//   ./bench_cputime [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include <map>
#include <vector>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/mapping/cost.hpp"
#include "nocmap/workload/random_cdcg.hpp"
#include "nocmap/workload/suite.hpp"

namespace {

using namespace nocmap;

struct Instance {
  graph::Cdcg cdcg;
  graph::Cwg cwg;
  noc::Mesh mesh;
  mapping::Mapping mapping;

  Instance(graph::Cdcg g, std::uint32_t w, std::uint32_t h)
      : cdcg(std::move(g)), cwg(cdcg.to_cwg()), mesh(w, h),
        mapping(mesh, cdcg.num_cores()) {
    util::Rng rng(1);
    mapping = mapping::Mapping::random(mesh, cdcg.num_cores(), rng);
  }

  double ndp() const {
    return static_cast<double>(cdcg.num_packets() + cdcg.num_dependences());
  }
  double ncc() const { return static_cast<double>(cwg.num_edges()); }
};

const energy::Technology kTech = energy::technology_0_07u();

void run_cwm(benchmark::State& state, const Instance& inst) {
  const mapping::CwmCost cost(inst.cwg, inst.mesh, kTech);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.cost(inst.mapping));
  }
  state.counters["NCC"] = inst.ncc();
  state.counters["NDP"] = inst.ndp();
  state.counters["NDP/NCC"] = inst.ndp() / inst.ncc();
}

void run_cdcm(benchmark::State& state, const Instance& inst) {
  const mapping::CdcmCost cost(inst.cdcg, inst.mesh, kTech);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cost.cost(inst.mapping));
  }
  state.counters["NCC"] = inst.ncc();
  state.counters["NDP"] = inst.ndp();
  state.counters["NDP/NCC"] = inst.ndp() / inst.ncc();
}

// --- Suite applications -----------------------------------------------------

const Instance& suite_instance(std::size_t index) {
  static const std::vector<Instance>* instances = [] {
    auto* v = new std::vector<Instance>;
    for (const workload::SuiteEntry& e : workload::table1_suite()) {
      v->emplace_back(e.cdcg, e.noc_width, e.noc_height);
    }
    return v;
  }();
  return (*instances)[index];
}

void BM_CwmEval_Suite(benchmark::State& state) {
  run_cwm(state, suite_instance(static_cast<std::size_t>(state.range(0))));
}
void BM_CdcmEval_Suite(benchmark::State& state) {
  run_cdcm(state, suite_instance(static_cast<std::size_t>(state.range(0))));
}
// Representative small / medium / large rows: romberg-v1 (0), imgenc-v2
// (10), random-6 (13), random-big-1 (15), random-big-3 (17).
BENCHMARK(BM_CwmEval_Suite)->Arg(0)->Arg(10)->Arg(13)->Arg(15)->Arg(17);
BENCHMARK(BM_CdcmEval_Suite)->Arg(0)->Arg(10)->Arg(13)->Arg(15)->Arg(17);

// --- NDP/NCC ladder -----------------------------------------------------------
// Fixed core count and communication pattern; the packet count per core pair
// grows, so NCC stays flat while NDP climbs — exactly the ratio experiment
// of Section 5.

const Instance& ladder_instance(std::size_t packets_per_edge) {
  static auto* cache = new std::map<std::size_t, Instance>;
  auto it = cache->find(packets_per_edge);
  if (it == cache->end()) {
    workload::RandomCdcgParams params;
    params.num_cores = 12;
    params.num_packets =
        static_cast<std::uint32_t>(12 * packets_per_edge);
    params.total_bits = params.num_packets * 64;
    params.parallelism = 4.0;
    util::Rng rng(0x1ADD);
    it = cache
             ->emplace(packets_per_edge,
                       Instance(workload::generate_random_cdcg(params, rng),
                                4, 3))
             .first;
  }
  return it->second;
}

void BM_CwmEval_Ladder(benchmark::State& state) {
  run_cwm(state, ladder_instance(static_cast<std::size_t>(state.range(0))));
}
void BM_CdcmEval_Ladder(benchmark::State& state) {
  run_cdcm(state, ladder_instance(static_cast<std::size_t>(state.range(0))));
}
BENCHMARK(BM_CwmEval_Ladder)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_CdcmEval_Ladder)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
