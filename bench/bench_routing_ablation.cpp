// Ablation A2 — routing algorithm choice. The paper fixes deterministic XY
// routing; this bench quantifies how much the CDCM results depend on that
// choice by re-optimizing under XY, YX and west-first routing.
//
//   ./bench_routing_ablation

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/core/explorer.hpp"
#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/suite.hpp"

int main() {
  using namespace nocmap;

  util::TextTable t({"application", "routing", "CDCM texec", "CDCM energy",
                     "contention", "ETR vs CWM"});
  t.set_title("Routing-algorithm ablation (CDCM re-optimized per router)");

  // A representative slice: one embedded and one random app per small size
  // class, plus the 8x8.
  const char* picks[] = {"objrec-v1", "imgenc-v1", "fft-v1",
                         "random-5", "random-6", "random-big-1"};
  for (const workload::SuiteEntry& e : workload::table1_suite()) {
    bool selected = false;
    for (const char* p : picks) selected |= (e.name == p);
    if (!selected) continue;

    const noc::Mesh mesh(e.noc_width, e.noc_height);
    for (const auto algo :
         {noc::RoutingAlgorithm::kXY, noc::RoutingAlgorithm::kYX,
          noc::RoutingAlgorithm::kWestFirst}) {
      std::cerr << "[routing] " << e.name << " / "
                << noc::routing_algorithm_name(algo) << " ..." << std::endl;
      core::ExplorerOptions options;
      options.tech = energy::technology_0_07u();
      options.routing = algo;
      options.seed = 0xAB1A;
      options.es_auto_threshold = 50'000;
      if (mesh.num_tiles() >= 64) {
        options.sa.moves_per_tile = 3;
        options.sa.max_steps = 80;
        options.sa.max_stale_steps = 6;
      }
      const core::Explorer explorer(e.cdcg, mesh, options);
      const core::Comparison cmp = explorer.compare();
      t.add_row({e.name, noc::routing_algorithm_name(algo),
                 util::format_time_ns(cmp.cdcm.sim.texec_ns),
                 util::format_energy_j(cmp.cdcm.sim.energy.total_j()),
                 util::format_time_ns(cmp.cdcm.sim.total_contention_ns),
                 util::format_percent(cmp.execution_time_reduction())});
    }
    t.add_separator();
  }

  std::cout << t;
  std::cout << "\nExpectation: the CWM-vs-CDCM gap (ETR) persists under every "
               "deterministic router;\nabsolute numbers shift a little "
               "because minimal paths and conflict sets differ.\n";
  return 0;
}
