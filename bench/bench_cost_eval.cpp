/// \file bench_cost_eval.cpp
/// Evaluation-engine microbenchmark: evaluations/second for the CWM
/// objective (legacy full recompute vs hop-table full vs incremental delta)
/// and the CDCM ladder (one-shot simulate(), reusable Simulator arena,
/// CdcmCost swap-delta, BatchEvaluator at 1 and T threads, hybrid
/// CWM->CDCM objective) across square meshes — or any grid/topology via
/// --sizes/--topology — plus a heap-allocation probe that verifies
/// Simulator::run() allocates nothing in the steady state.
///
/// Usage: bench_cost_eval [--quick] [--max-mesh N] [--sizes WxH,...]
///                        [--topology mesh|torus|xmesh]
///                        [--express-interval K] [--batch-threads T]
///                        [--hybrid-cadence N] [--bnb-nodes N] [--out FILE]
///
/// Writes the JSON report (default BENCH_eval.json, the file tracked at the
/// repo root) and prints a summary table. The report schema (fields, units,
/// what CI validates) is documented in docs/bench-format.md.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <sstream>
#include <string>

#include "nocmap/core/eval_bench.hpp"

// --- Global allocation probe -------------------------------------------------
// Counts every heap allocation in the process; eval_bench snapshots the
// counter around steady-state Simulator::run() batches.

namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

bool parse_size(const std::string& item, std::uint32_t& w, std::uint32_t& h) {
  const std::size_t sep = item.find('x');
  if (sep == std::string::npos || sep == 0 || sep + 1 == item.size()) {
    return false;
  }
  w = static_cast<std::uint32_t>(std::atoi(item.substr(0, sep).c_str()));
  h = static_cast<std::uint32_t>(std::atoi(item.substr(sep + 1).c_str()));
  return w > 0 && h > 0;
}
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

int main(int argc, char** argv) {
  nocmap::core::EvalBenchOptions options;
  options.min_time_s = 0.25;
  options.alloc_count = &allocation_count;
  std::string out_path = "BENCH_eval.json";

  const auto usage = [] {
    std::cerr << "usage: bench_cost_eval [--quick] [--max-mesh N] "
                 "[--sizes WxH,...] [--topology mesh|torus|xmesh] "
                 "[--express-interval K] [--batch-threads T] "
                 "[--hybrid-cadence N] [--bnb-nodes N] [--out FILE]\n";
    return 2;
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      options.min_time_s = 0.05;
      options.max_mesh = 5;
    } else if (arg == "--max-mesh" && i + 1 < argc) {
      options.max_mesh = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--sizes" && i + 1 < argc) {
      std::istringstream list(argv[++i]);
      std::string item;
      while (std::getline(list, item, ',')) {
        std::uint32_t w = 0, h = 0;
        if (!parse_size(item, w, h)) return usage();
        options.sizes.emplace_back(w, h);
      }
      if (options.sizes.empty()) return usage();
    } else if (arg == "--topology" && i + 1 < argc) {
      options.topology = argv[++i];
    } else if (arg == "--express-interval" && i + 1 < argc) {
      options.express_interval =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--batch-threads" && i + 1 < argc) {
      options.batch_threads = static_cast<std::uint32_t>(std::atoi(argv[++i]));
      if (options.batch_threads == 0) return usage();
    } else if (arg == "--hybrid-cadence" && i + 1 < argc) {
      options.hybrid_cadence =
          static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--ckpt-interval" && i + 1 < argc) {
      options.ckpt_interval = static_cast<std::uint32_t>(std::atoi(argv[++i]));
    } else if (arg == "--bnb-nodes" && i + 1 < argc) {
      options.bnb_max_nodes =
          static_cast<std::uint64_t>(std::atoll(argv[++i]));
      if (options.bnb_max_nodes == 0) return usage();
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      return usage();
    }
  }

  const nocmap::core::EvalBenchReport report =
      nocmap::core::run_eval_bench(options);

  std::printf(
      "%-6s %12s %12s %12s %12s %12s %12s %11s %10s %9s %12s %12s %7s %10s "
      "%8s\n",
      "noc", "cwm_legacy/s", "cwm_delta/s", "cdcm_1shot/s", "cdcm_reuse/s",
      "cdcm_delta/s", "cdcm_ckpt/s", "ckpt_spdup", "replay%", "batch_Tx",
      "cdcm_batchT/s", "hybrid/s", "allocs", "bnb_prune%", "bnb_done");
  for (const nocmap::core::EvalBenchRow& r : report.rows) {
    std::printf(
        "%ux%-4u %12.0f %12.0f %12.0f %12.0f %12.0f %12.0f %10.1fx %8.1f%% "
        "%8.2fx %12.0f %12.0f %7lld %9.4f%% %8s\n",
        r.mesh_width, r.mesh_height, r.cwm_legacy_per_s, r.cwm_delta_per_s,
        r.cdcm_oneshot_per_s, r.cdcm_reuse_per_s, r.cdcm_delta_per_s,
        r.cdcm_ckpt_per_s, r.ckpt_speedup(), 100.0 * r.ckpt_replay_frac,
        r.cdcm_batch_scaling(), r.cdcm_batch_t_per_s, r.hybrid_per_s,
        static_cast<long long>(r.cdcm_allocs_per_run),
        100.0 * r.bnb_pruned_frac(), r.bnb_complete ? "yes" : "no");
  }

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "bench_cost_eval: cannot write " << out_path << "\n";
    return 1;
  }
  out << report.to_json();
  std::cout << "wrote " << out_path << "\n";
  return 0;
}
