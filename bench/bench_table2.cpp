// Regenerates Table 2: "Average energy and execution time reductions for
// CWM and CDCM" — for every NoC size, the average ETR (execution-time
// reduction) and ECS (energy-consumption saving) of the CDCM-optimized
// mapping over the CWM-optimized mapping, at 0.35u and 0.07u technologies.
//
// Method (Section 5): each application is mapped twice, once minimizing the
// CWM objective (Equation 3) and once the CDCM objective (Equation 10);
// both winners are then evaluated with the ground-truth wormhole simulator.
// Small NoCs use exhaustive search as well as SA; large ones SA only.
// Reductions follow the paper's normalization (Section 4.1): x% means the
// CWM mapping is x% slower / hungrier than the CDCM mapping.
//
//   ./bench_table2 [--csv] [--quick]
//
// --quick shrinks the SA budget for a fast smoke run (shape still holds).

#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/core/explorer.hpp"
#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/suite.hpp"

namespace {

struct RowResult {
  double etr_sum = 0.0;
  double ecs35_sum = 0.0;
  double ecs07_sum = 0.0;
  int count = 0;
};

nocmap::core::ExplorerOptions options_for(const nocmap::noc::Mesh& mesh,
                                          std::uint64_t seed, bool quick) {
  nocmap::core::ExplorerOptions options;
  options.seed = seed;
  // ES is feasible (and exact) only on the small meshes; cap its budget so a
  // pathological case cannot stall the harness.
  options.es_auto_threshold = 50'000;
  options.es.max_evaluations = 2'000'000;
  if (mesh.num_tiles() >= 64) {
    // Large NoCs: lighter SA, as the per-evaluation CDCM simulation grows
    // with packet count.
    options.sa.moves_per_tile = quick ? 1 : 6;
    options.sa.max_steps = quick ? 20 : 160;
    options.sa.max_stale_steps = quick ? 4 : 10;
  } else if (quick) {
    options.sa.moves_per_tile = 4;
    options.sa.max_stale_steps = 5;
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nocmap;
  bool csv = false, quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  const energy::Technology tech35 = energy::technology_0_35u();
  const energy::Technology tech07 = energy::technology_0_07u();

  std::vector<std::pair<std::string, RowResult>> rows;
  for (const std::string& size : workload::table1_noc_sizes()) {
    rows.emplace_back(size, RowResult{});
  }

  for (const workload::SuiteEntry& e : workload::table1_suite()) {
    const noc::Mesh mesh(e.noc_width, e.noc_height);
    std::cerr << "[table2] " << e.name << " (" << e.noc_size_label()
              << ") ..." << std::endl;

    // One CWM mapping (the objective is technology-independent up to scale)
    // and one CDCM mapping per technology (the static/dynamic balance
    // shifts the optimum).
    core::ExplorerOptions opt07 = options_for(mesh, 0xC0FFEE, quick);
    opt07.tech = tech07;
    const core::Explorer explorer07(e.cdcg, mesh, opt07);
    const core::Comparison cmp07 = explorer07.compare();

    core::ExplorerOptions opt35 = options_for(mesh, 0xC0FFEE, quick);
    opt35.tech = tech35;
    const core::Explorer explorer35(e.cdcg, mesh, opt35);
    const core::Comparison cmp35 = explorer35.compare();

    for (auto& [size, acc] : rows) {
      if (size != e.noc_size_label()) continue;
      acc.etr_sum += cmp07.execution_time_reduction();
      acc.ecs07_sum += cmp07.energy_saving();
      acc.ecs35_sum += cmp35.energy_saving();
      acc.count += 1;
    }
  }

  // Paper values for side-by-side comparison.
  const struct {
    const char* size;
    double etr, ecs35, ecs07;
  } paper[] = {
      {"3 x 2", 36, 0.50, 15},  {"2 x 4", 27, 0.43, 13},
      {"3 x 3", 39, 0.55, 17},  {"2 x 5", 42, 0.72, 23},
      {"3 x 4", 42, 0.71, 22},  {"8 x 8", 38, 0.60, 19},
      {"10 x 10", 46, 0.80, 25}, {"12 x 10", 48, 0.86, 26},
  };

  util::TextTable t({"Algorithm", "NoC size", "ETR (paper)", "ECS 0.35u (paper)",
                     "ECS 0.07u (paper)"});
  t.set_title("Table 2 - Average reductions, CDCM vs CWM mappings");
  double etr_avg = 0, ecs35_avg = 0, ecs07_avg = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [size, acc] = rows[i];
    const double etr = acc.etr_sum / acc.count;
    const double ecs35 = acc.ecs35_sum / acc.count;
    const double ecs07 = acc.ecs07_sum / acc.count;
    etr_avg += etr / rows.size();
    ecs35_avg += ecs35 / rows.size();
    ecs07_avg += ecs07 / rows.size();
    const bool small = i < 5;  // First five sizes are the paper's ES+SA band.
    auto cell = [](double v, double p, int decimals) {
      return nocmap::util::format_percent(v, decimals) + " (" +
             nocmap::util::format_fixed(p, decimals) + " %)";
    };
    t.add_row({small ? "ES + SA" : "SA only", size,
               cell(etr, paper[i].etr, 0), cell(ecs35, paper[i].ecs35, 2),
               cell(ecs07, paper[i].ecs07, 0)});
  }
  t.add_separator();
  t.add_row({"", "Average",
             util::format_percent(etr_avg, 0) + " (40 %)",
             util::format_percent(ecs35_avg, 2) + " (0.65 %)",
             util::format_percent(ecs07_avg, 0) + " (20 %)"});

  std::cout << (csv ? t.to_csv() : t.to_string());
  std::cout << "\nShape expectations: ETR in the tens of percent, ECS0.35 "
               "well under 2 %,\nECS0.07 tracking roughly half of ETR, mild "
               "growth with NoC size.\n";
  return 0;
}
