// Regenerates Figures 2-5: the paper's worked example, checked value by
// value against the published numbers. Exits non-zero on any mismatch, so
// this doubles as an acceptance gate.
//
//   ./bench_fig2to5

#include <cmath>
#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/mapping/cost.hpp"
#include "nocmap/sim/timeline.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/paper_example.hpp"

namespace {

int failures = 0;

void check(const std::string& what, double measured, double paper) {
  const bool ok = std::fabs(measured - paper) < 1e-9;
  if (!ok) ++failures;
  std::cout << "  [" << (ok ? "ok" : "FAIL") << "] " << what << ": measured "
            << measured << ", paper " << paper << "\n";
}

}  // namespace

int main() {
  using namespace nocmap;

  const graph::Cdcg cdcg = workload::paper_example_cdcg();
  const noc::Mesh mesh = workload::paper_example_mesh();
  const energy::Technology tech = energy::example_technology();
  const graph::Cwg cwg = cdcg.to_cwg();
  const mapping::Mapping map_a = workload::paper_mapping_a();
  const mapping::Mapping map_b = workload::paper_mapping_b();

  std::cout << "=== Figure 2: CWM energy (pJ) ===\n";
  check("EDyNoC(mapping a)",
        mapping::cwm_dynamic_energy(cwg, mesh, map_a, tech) * 1e12, 390.0);
  check("EDyNoC(mapping b)",
        mapping::cwm_dynamic_energy(cwg, mesh, map_b, tech) * 1e12, 390.0);

  const auto a = sim::simulate(cdcg, mesh, map_a, tech);
  const auto b = sim::simulate(cdcg, mesh, map_b, tech);

  std::cout << "\n=== Figure 3(a) + Figure 4: mapping (a) ===\n";
  check("texec (ns)", a.texec_ns, 100.0);
  check("ENoC (pJ)", a.energy.total_j() * 1e12, 400.0);
  check("contended packets", static_cast<double>(a.num_contended_packets), 1.0);
  check("A->F contention (ns)",
        a.packets[workload::kPacketAF1].contention_ns, 7.0);
  std::cout << "\nPer-resource annotations (compare Figure 3a):\n"
            << sim::render_annotations(a, cdcg, mesh);
  std::cout << "\nTiming diagram (compare Figure 4):\n"
            << sim::render_timeline(a, cdcg, tech, 100);

  std::cout << "\n=== Figure 3(b) + Figure 5: mapping (b) ===\n";
  check("texec (ns)", b.texec_ns, 90.0);
  check("ENoC (pJ)", b.energy.total_j() * 1e12, 399.0);
  check("contended packets", static_cast<double>(b.num_contended_packets), 0.0);
  std::cout << "\nPer-resource annotations (compare Figure 3b):\n"
            << sim::render_annotations(b, cdcg, mesh);
  std::cout << "\nTiming diagram (compare Figure 5):\n"
            << sim::render_timeline(b, cdcg, tech, 100);

  std::cout << "\n=== Section 4.1 relative numbers ===\n";
  check("execution time reduction (%)",
        (a.texec_ns - b.texec_ns) / b.texec_ns * 100.0, 100.0 / 9.0);

  std::cout << "\n"
            << (failures == 0 ? "ALL CHECKS PASSED"
                              : "SOME CHECKS FAILED")
            << " (" << failures << " failures)\n";
  return failures == 0 ? 0 : 1;
}
