// Related-work check — Hu & Marculescu (cited in Section 2) report that
// mapping algorithms save "more than 60% of energy" against random mapping
// solutions. This bench reproduces that comparison with our CWM search:
// average random-mapping dynamic energy vs the optimized mapping.
//
//   ./bench_random_baseline

#include <iostream>

#include "nocmap/noc/mesh.hpp"
#include "nocmap/core/explorer.hpp"
#include "nocmap/mapping/cost.hpp"
#include "nocmap/search/random_search.hpp"
#include "nocmap/util/strings.hpp"
#include "nocmap/util/table.hpp"
#include "nocmap/workload/suite.hpp"

int main() {
  using namespace nocmap;
  const energy::Technology tech = energy::technology_0_07u();

  util::TextTable t({"application", "NoC", "avg random (pJ)",
                     "optimized (pJ)", "saving"});
  t.set_title("Optimized CWM mapping vs random mappings (dynamic energy)");

  double saving_sum = 0;
  int rows = 0;
  for (const workload::SuiteEntry& e : workload::table1_suite()) {
    // The effect is most visible where the mesh is big relative to the app.
    if (e.noc_width * e.noc_height < 9) continue;
    const noc::Mesh mesh(e.noc_width, e.noc_height);
    std::cerr << "[random-baseline] " << e.name << " ..." << std::endl;

    const graph::Cwg cwg = e.cdcg.to_cwg();
    const mapping::CwmCost cost(cwg, mesh, tech);

    // Average cost of 100 uniformly random mappings.
    util::Rng rng(0xBA5E);
    double random_avg = 0;
    constexpr int kSamples = 100;
    for (int i = 0; i < kSamples; ++i) {
      random_avg +=
          cost.cost(mapping::Mapping::random(mesh, cwg.num_cores(), rng)) /
          kSamples;
    }

    core::ExplorerOptions options;
    options.tech = tech;
    options.seed = 0xBA5E;
    options.es_auto_threshold = 50'000;
    if (mesh.num_tiles() >= 64) {
      options.sa.moves_per_tile = 3;
      options.sa.max_steps = 80;
    }
    const core::Explorer explorer(e.cdcg, mesh, options);
    const core::ModelOutcome best = explorer.optimize_cwm();

    const double saving = 1.0 - best.objective_j / random_avg;
    saving_sum += saving;
    ++rows;
    t.add_row({e.name, e.noc_size_label(),
               util::format_fixed(random_avg * 1e12, 1),
               util::format_fixed(best.objective_j * 1e12, 1),
               util::format_percent(saving)});
  }

  std::cout << t;
  std::cout << "\nAverage saving vs random mapping: "
            << util::format_percent(saving_sum / rows)
            << "  [Hu & Marculescu report > 60 % on their benchmarks]\n";
  return 0;
}
